// Package blockdev simulates the disks that sit underneath the NVM cache:
// a SATA SSD and a ferromagnetic HDD, exactly the two media the paper
// evaluates (Section 5.4.1). Devices transfer fixed 4KB blocks, count every
// block read/written in a metrics.Recorder, and charge per-block service
// time to the shared simulated clock.
//
// Block contents are held sparsely (only blocks ever written occupy
// memory), so large address spaces are cheap; unwritten blocks read as
// zeroes, like a freshly trimmed device.
package blockdev

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// BlockSize is the transfer unit, matching the cache and file system block
// size (4KB, the paper's default).
const BlockSize = 4096

// Store is the block-store contract the caches write behind. A raw
// *Device satisfies it, and so does a tiered device (objstore.Tier, a
// small block device fronting an object store): the cache layer above
// neither knows nor cares whether a block lives on one medium or is
// tiered across several. Writes are durable when WriteBlock returns —
// every implementation must preserve that property, because the layers
// above clear their own dirty state on return.
type Store interface {
	// Blocks returns the store's capacity (its addressable span) in
	// BlockSize blocks.
	Blocks() uint64
	// ReadBlock copies block no into p (len BlockSize). Unwritten blocks
	// read as zeroes.
	ReadBlock(no uint64, p []byte)
	// WriteBlock stores p (len BlockSize) as block no, durably.
	WriteBlock(no uint64, p []byte)
}

// Profile describes a disk medium's per-block service times.
type Profile struct {
	Name    string
	ReadNS  int64 // per 4KB block read
	WriteNS int64 // per 4KB block write
	// Parallel is the device's internal queue depth: how many in-flight
	// requests the medium overlaps (NCQ on SATA, multiple channels on
	// flash). When k requests are in flight concurrently, each charges
	// serviceNS/min(k, Parallel) to the shared clock, so k fully
	// overlapped requests advance simulated time by roughly one service
	// time in total — but only when the host actually issues them
	// concurrently. A host that serializes its I/O (for example under a
	// global lock) keeps inflight at 1 and pays full price, which is
	// exactly the behaviour the miss-path scaling figure measures. 0 or 1
	// keeps the fully serialized charging model; every stock profile uses
	// it, so existing figures and crash sweeps are unchanged.
	Parallel    int
	Description string
}

// NCQ derives a profile with the given internal queue depth (named after
// SATA's Native Command Queuing). Service times are unchanged; only the
// overlap the device grants to concurrently issued requests.
func NCQ(p Profile, depth int) Profile {
	if depth < 1 {
		depth = 1
	}
	p.Parallel = depth
	p.Name = fmt.Sprintf("%s+q%d", p.Name, depth)
	return p
}

// Media profiles. The SSD figure is a SATA-class ~45K write IOPS device;
// the HDD figure is dominated by positioning time, giving the ~5x
// throughput drop the paper observes when swapping SSD for HDD.
var (
	SSD = Profile{Name: "SSD", ReadNS: 70_000, WriteNS: 90_000,
		Description: "SATA flash SSD (paper's default disk)"}
	HDD = Profile{Name: "HDD", ReadNS: 4_000_000, WriteNS: 4_500_000,
		Description: "7.2K RPM hard disk, positioning dominated"}
	// Null is an infinitely fast disk, useful for isolating NVM-layer
	// behaviour in unit tests.
	Null = Profile{Name: "null", ReadNS: 0, WriteNS: 0, Description: "no-cost disk"}
)

// Device is a simulated block device. All methods are safe for concurrent
// use.
type Device struct {
	mu     sync.Mutex
	blocks map[uint64][]byte
	nblk   uint64
	prof   Profile
	clock  *sim.Clock
	rec    *metrics.Recorder

	// inflight counts requests currently inside ReadBlock/WriteBlock,
	// for the Profile.Parallel overlap model. It doubles as the queue-depth
	// gauge IOStats and the shared Recorder expose.
	inflight atomic.Int64

	// Per-device I/O counters. The shared Recorder aggregates the same
	// quantities across every device charging it; these stay per device so
	// multi-device stacks (a tiered L2 behind a cache, a cluster of nodes)
	// can be read one medium at a time.
	blocksRead    atomic.Int64
	blocksWritten atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
}

// IOStats is a typed per-device counter snapshot, cumulative since New.
// QueueDepth is the instantaneous in-flight request count (a gauge, not a
// cumulative counter).
type IOStats struct {
	Name          string
	BlocksRead    int64
	BlocksWritten int64
	BytesRead     int64
	BytesWritten  int64
	QueueDepth    int64
}

// Stats returns the device's typed I/O counters.
func (d *Device) Stats() IOStats {
	return IOStats{
		Name:          d.prof.Name,
		BlocksRead:    d.blocksRead.Load(),
		BlocksWritten: d.blocksWritten.Load(),
		BytesRead:     d.bytesRead.Load(),
		BytesWritten:  d.bytesWritten.Load(),
		QueueDepth:    d.inflight.Load(),
	}
}

// New creates a device with capacity nblocks blocks of BlockSize bytes.
func New(nblocks uint64, prof Profile, clock *sim.Clock, rec *metrics.Recorder) *Device {
	if nblocks == 0 {
		panic("blockdev: zero capacity")
	}
	if clock == nil || rec == nil {
		panic("blockdev: nil clock or recorder")
	}
	return &Device{
		blocks: make(map[uint64][]byte),
		nblk:   nblocks,
		prof:   prof,
		clock:  clock,
		rec:    rec,
	}
}

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() uint64 { return d.nblk }

// Profile returns the medium profile.
func (d *Device) Profile() Profile { return d.prof }

func (d *Device) check(no uint64) {
	if no >= d.nblk {
		panic(fmt.Sprintf("blockdev: block %d beyond device of %d blocks", no, d.nblk))
	}
}

// charge advances the simulated clock by one request's service time,
// discounted by the overlap the profile's queue depth grants to the
// requests currently in flight. The additive clock sums charges across
// goroutines; dividing a fully overlapped request's cost by the overlap
// factor makes the sum approximate the elapsed time of a device that
// serves min(inflight, Parallel) requests at once. Serialized callers
// (inflight == 1) always pay full price.
//
// In-flight membership is logical, not physical: admit (below) parks
// each request on entry so every goroutine that is ready to issue one
// joins the window before anyone charges. Without that, the window
// would only capture requests that overlap in host real time — but
// nothing in the simulator sleeps, so a request occupies the device for
// mere nanoseconds of real time and concurrent issuers on few (or one)
// host cores would almost never coincide, understating the overlap the
// queue depth is meant to model.
func (d *Device) charge(ns int64) {
	if q := int64(d.prof.Parallel); q > 1 {
		if k := d.inflight.Load(); k > 1 {
			if k > q {
				k = q
			}
			ns /= k
		}
	}
	d.clock.AdvanceNS(ns)
}

// admit enters a request into the in-flight window. For overlap-capable
// profiles it then yields the processor: every other goroutine that is
// about to issue a request gets to execute its own admit before this
// one reads the queue depth in charge, so logically concurrent requests
// count each other even when the host runs goroutines one at a time.
// Serialized hosts are unaffected — a request issued under a global
// lock keeps every other issuer blocked on that lock, not runnable, so
// yielding cannot admit them and inflight stays at 1. Stock profiles
// (Parallel <= 1) skip the yield entirely.
func (d *Device) admit() {
	d.inflight.Add(1)
	d.rec.Inc(metrics.DiskQueueDepth)
	if d.prof.Parallel > 1 {
		runtime.Gosched()
	}
}

// release exits a request from the in-flight window, keeping the shared
// queue-depth gauge in step with the per-device counter.
func (d *Device) release() {
	d.inflight.Add(-1)
	d.rec.Add(metrics.DiskQueueDepth, -1)
}

// ReadBlock copies block no into p (which must be BlockSize long).
// Unwritten blocks read as zeroes.
func (d *Device) ReadBlock(no uint64, p []byte) {
	if len(p) != BlockSize {
		panic("blockdev: short read buffer")
	}
	d.check(no)
	d.admit()
	defer d.release()
	d.mu.Lock()
	b, ok := d.blocks[no]
	if ok {
		copy(p, b)
	} else {
		for i := range p {
			p[i] = 0
		}
	}
	d.mu.Unlock()
	d.blocksRead.Add(1)
	d.bytesRead.Add(BlockSize)
	d.rec.Inc(metrics.DiskBlocksRead)
	d.rec.Add(metrics.DiskBytesRead, BlockSize)
	d.charge(d.prof.ReadNS)
}

// WriteBlock stores p (BlockSize bytes) as block no. Disk writes are
// durable when WriteBlock returns (the simulated device has a non-volatile
// write cache, like an enterprise disk with power-loss protection; the
// consistency problems the paper studies all live above the disk).
func (d *Device) WriteBlock(no uint64, p []byte) {
	if len(p) != BlockSize {
		panic("blockdev: short write buffer")
	}
	d.check(no)
	d.admit()
	defer d.release()
	d.mu.Lock()
	b, ok := d.blocks[no]
	if !ok {
		b = make([]byte, BlockSize)
		d.blocks[no] = b
	}
	copy(b, p)
	d.mu.Unlock()
	d.blocksWritten.Add(1)
	d.bytesWritten.Add(BlockSize)
	d.rec.Inc(metrics.DiskBlocksWrite)
	d.rec.Add(metrics.DiskBytesWrite, BlockSize)
	d.charge(d.prof.WriteNS)
}

// WrittenBlocks reports how many distinct blocks hold data, for tests.
func (d *Device) WrittenBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}
