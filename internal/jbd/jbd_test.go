package jbd

import (
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// diskStore adapts a raw blockdev to the BlockStore interface.
type diskStore struct{ d *blockdev.Device }

func (s diskStore) ReadBlock(no uint64, p []byte) error  { s.d.ReadBlock(no, p); return nil }
func (s diskStore) WriteBlock(no uint64, p []byte) error { s.d.WriteBlock(no, p); return nil }

func newJournal(t *testing.T, jblocks uint64) (*Journal, *blockdev.Device, *metrics.Recorder) {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	j, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: jblocks})
	if err != nil {
		t.Fatal(err)
	}
	return j, disk, rec
}

func blockOf(b byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestCommitReadYourWrites(t *testing.T) {
	j, disk, _ := newJournal(t, 64)
	if err := j.Commit([]Update{{No: 5, Data: blockOf('a')}, {No: 6, Data: blockOf('b')}}); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	if err := j.ReadBlock(5, p); err != nil {
		t.Fatal(err)
	}
	if p[0] != 'a' {
		t.Fatalf("read %q", p[0])
	}
	// Home location untouched until checkpoint.
	disk.ReadBlock(5, p)
	if p[0] != 0 {
		t.Fatal("home written before checkpoint")
	}
}

func TestCheckpointWritesHome(t *testing.T) {
	j, disk, rec := newJournal(t, 64)
	if err := j.Commit([]Update{{No: 5, Data: blockOf('a')}}); err != nil {
		t.Fatal(err)
	}
	if err := j.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(5, p)
	if p[0] != 'a' {
		t.Fatal("checkpoint did not reach home")
	}
	if rec.Get(metrics.JournalCkptBlks) != 1 {
		t.Fatalf("ckpt blocks = %d", rec.Get(metrics.JournalCkptBlks))
	}
	if j.PendingBlocks() != 0 {
		t.Fatal("pending not drained")
	}
}

func TestCheckpointSkipsSuperseded(t *testing.T) {
	j, disk, _ := newJournal(t, 64)
	j.Commit([]Update{{No: 5, Data: blockOf('a')}})
	j.Commit([]Update{{No: 5, Data: blockOf('b')}})
	if err := j.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(5, p)
	if p[0] != 'b' {
		t.Fatalf("home = %q, want latest 'b'", p[0])
	}
}

func TestDoubleWriteAccounting(t *testing.T) {
	j, _, rec := newJournal(t, 64)
	j.Commit([]Update{{No: 1, Data: blockOf(1)}, {No: 2, Data: blockOf(2)}})
	j.CheckpointAll()
	// Each data block is written twice: log + checkpoint.
	if lb := rec.Get(metrics.JournalBlocks); lb != 2 {
		t.Fatalf("log blocks = %d", lb)
	}
	if cb := rec.Get(metrics.JournalCkptBlks); cb != 2 {
		t.Fatalf("ckpt blocks = %d", cb)
	}
	// Plus descriptor and commit metadata.
	if mb := rec.Get(metrics.JournalMeta); mb < 2 {
		t.Fatalf("meta blocks = %d", mb)
	}
}

func TestJournalWrapsAround(t *testing.T) {
	j, disk, _ := newJournal(t, 16) // tiny ring forces wraps + checkpoints
	for round := 0; round < 30; round++ {
		err := j.Commit([]Update{
			{No: uint64(round % 7), Data: blockOf(byte(round))},
			{No: uint64(100 + round%5), Data: blockOf(byte(round))},
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := j.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(uint64(29%7), p)
	if p[0] != 29 {
		t.Fatalf("latest value lost: %d", p[0])
	}
}

func TestTooLargeRejected(t *testing.T) {
	j, _, _ := newJournal(t, 8)
	var ups []Update
	for i := 0; i < 10; i++ {
		ups = append(ups, Update{No: uint64(i), Data: blockOf(1)})
	}
	if err := j.Commit(ups); err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryReplaysSealed(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	j, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	j.Commit([]Update{{No: 5, Data: blockOf('a')}})
	j.Commit([]Update{{No: 6, Data: blockOf('b')}})
	// Simulate crash: reopen without checkpointing (journal state is on
	// the disk already; the DRAM pending map is simply lost).
	j2, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	if err := j2.ReadBlock(5, p); err != nil || p[0] != 'a' {
		t.Fatalf("block 5 after recovery: %q %v", p[0], err)
	}
	if err := j2.ReadBlock(6, p); err != nil || p[0] != 'b' {
		t.Fatalf("block 6 after recovery: %q %v", p[0], err)
	}
	// Replay wrote homes directly.
	disk.ReadBlock(5, p)
	if p[0] != 'a' {
		t.Fatal("recovery did not replay to home")
	}
	// Journal accepts new commits after recovery.
	if err := j2.Commit([]Update{{No: 7, Data: blockOf('c')}}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryDiscardsUnsealed(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	j, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	j.Commit([]Update{{No: 5, Data: blockOf('a')}})
	// Hand-craft an unsealed transaction: descriptor + data, no commit.
	buf := make([]byte, BlockSize)
	buf[0], buf[1], buf[2], buf[3] = 0x32, 0x44, 0x42, 0x4a // jMagic LE
	buf[4] = 1                                              // typeDesc
	buf[8] = 2                                              // seq 2
	buf[16] = 1                                             // count 1
	buf[32] = 99                                            // home block 99
	disk.WriteBlock(1000+1+3, buf)                          // after desc+log+commit of txn 1
	disk.WriteBlock(1000+1+4, blockOf('X'))                 // its log block

	j2, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(99, p)
	if p[0] != 0 {
		t.Fatal("unsealed transaction was replayed")
	}
	if err := j2.ReadBlock(5, p); err != nil || p[0] != 'a' {
		t.Fatal("sealed transaction lost")
	}
}

func TestMaybeCheckpointKeepsOccupancyDown(t *testing.T) {
	j, _, _ := newJournal(t, 32)
	for i := 0; i < 50; i++ {
		if err := j.Commit([]Update{{No: uint64(i), Data: blockOf(byte(i))}}); err != nil {
			t.Fatal(err)
		}
		if err := j.MaybeCheckpoint(0.5); err != nil {
			t.Fatal(err)
		}
		if occ := j.head - j.tail; float64(occ) > 0.5*float64(j.area)+3 {
			t.Fatalf("occupancy %d exceeds threshold", occ)
		}
	}
}

func TestEmptyCommitNoop(t *testing.T) {
	j, _, rec := newJournal(t, 16)
	if err := j.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if rec.Get(metrics.JournalCommit) != 0 {
		t.Fatal("empty commit counted")
	}
}

func TestRevokeSuppressesReplay(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	j, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Txn 1 logs block 5; txn 2 revokes it (the file was truncated).
	if err := j.Commit([]Update{{No: 5, Data: blockOf('S')}}); err != nil {
		t.Fatal(err)
	}
	if err := j.CommitTxn(Txn{
		Updates: []Update{{No: 6, Data: blockOf('k')}},
		Revoked: []uint64{5},
	}); err != nil {
		t.Fatal(err)
	}
	// Crash before checkpoint: reopen replays the journal.
	j2, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(5, p)
	if p[0] == 'S' {
		t.Fatal("revoked block was resurrected by replay")
	}
	disk.ReadBlock(6, p)
	if p[0] != 'k' {
		t.Fatal("non-revoked block not replayed")
	}
	_ = j2
}

func TestRevokeThenRewriteLaterTxn(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	j, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Block 5: logged, revoked, then re-allocated and logged again. The
	// final write must survive replay (revocation only covers seq <= its
	// own transaction).
	j.Commit([]Update{{No: 5, Data: blockOf('a')}})
	j.CommitTxn(Txn{Updates: []Update{{No: 9, Data: blockOf('x')}}, Revoked: []uint64{5}})
	j.Commit([]Update{{No: 5, Data: blockOf('b')}})
	if _, err := Open(diskStore{disk}, rec, Options{Start: 1000, Blocks: 64}); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(5, p)
	if p[0] != 'b' {
		t.Fatalf("block 5 = %q, want re-written 'b'", p[0])
	}
}

func TestRevokeClearsPending(t *testing.T) {
	j, disk, _ := newJournal(t, 64)
	j.Commit([]Update{{No: 5, Data: blockOf('a')}})
	j.CommitTxn(Txn{Updates: []Update{{No: 6, Data: blockOf('b')}}, Revoked: []uint64{5}})
	// Checkpointing must not write the dead block home.
	if err := j.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	disk.ReadBlock(5, p)
	if p[0] == 'a' {
		t.Fatal("revoked block checkpointed to home")
	}
}
