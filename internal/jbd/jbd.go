// Package jbd implements a JBD2-style redo journal, the consistency
// mechanism of the paper's "Classic" competitor (Ext4 with data
// journalling, Section 2.3).
//
// The journal occupies a contiguous block range of the underlying device
// (which, in the Classic stack, is fronted by the Flashcache-style NVM
// cache — so every journal write is also a cached NVM write, reproducing
// the double-write amplification of Figure 3).
//
// On-disk format (Figure 2(b) of the paper): a journal superblock followed
// by a ring of transactions, each made of one or more descriptor blocks
// (tagging the home locations of the logged blocks), the log blocks
// themselves, and a commit block that seals the transaction. Committed
// transactions are later *checkpointed*: their blocks are written a second
// time, to their home locations, and the journal tail advances.
package jbd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"tinca/internal/blockdev"
	"tinca/internal/bufpool"
	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// BlockSize is the journal block size (4KB, same as the file system).
const BlockSize = blockdev.BlockSize

// BlockStore is the device interface the journal runs on. Both the
// Classic cache and a raw disk adapter satisfy it.
type BlockStore interface {
	ReadBlock(no uint64, p []byte) error
	WriteBlock(no uint64, p []byte) error
}

// Journal block types.
const (
	jMagic     uint32 = 0x4a424432 // "JBD2"
	typeDesc   uint32 = 1
	typeCommit uint32 = 2
	typeSuper  uint32 = 3
	typeRevoke uint32 = 4
)

// tagsPerDesc is how many home-block tags fit one descriptor block
// (header: magic, type, seq, count = 4×8B for alignment simplicity).
const tagsPerDesc = (BlockSize - 32) / 8

// Errors.
var (
	ErrTooLarge = errors.New("jbd: transaction larger than journal")
	ErrClosed   = errors.New("jbd: journal closed")
)

// Update is one block mutation in a transaction.
type Update struct {
	No   uint64 // home (file system) block number
	Data []byte // BlockSize bytes
}

// Txn is a full journal transaction: block updates plus the home blocks
// the transaction *revokes* (freed by truncate/unlink — Figure 2(b)'s
// revoke block). Replay must not resurrect an earlier logged version of a
// revoked block.
type Txn struct {
	Updates []Update
	Revoked []uint64
}

// committedTxn tracks a committed-but-not-checkpointed transaction.
type committedTxn struct {
	seq    uint64
	homes  []uint64
	endPos uint64 // monotonic journal position just past this txn
}

// Journal is a redo journal over a BlockStore. All methods are safe for
// concurrent use; commits are serialized.
type Journal struct {
	mu    sync.Mutex
	store BlockStore
	rec   *metrics.Recorder

	start  uint64 // first device block of the journal area (superblock)
	blocks uint64 // total journal area length in blocks (incl. superblock)
	area   uint64 // ring size = blocks-1

	seq       uint64            // sequence of the next transaction to commit
	head      uint64            // monotonic next-free ring position
	tail      uint64            // monotonic oldest live ring position
	tailSeq   uint64            // sequence of the oldest un-checkpointed txn
	pending   map[uint64][]byte // home block -> latest committed data
	pendingBy map[uint64]uint64 // home block -> seq of latest committer
	live      []committedTxn

	// Commit-phase observation (Options.Observe): simulated-ns histograms
	// for the log-write phase, the commit record, checkpointing and the
	// whole CommitTxn, mirroring the per-phase breakdown the Tinca commit
	// pipeline records so the two designs can be compared phase by phase.
	clock                         *sim.Clock
	hLog, hCommitBlk, hCkpt, hTxn *metrics.Histogram

	closed bool
}

// Options configure a Journal.
type Options struct {
	// Start is the first device block of the journal area.
	Start uint64
	// Blocks is the journal area length (superblock + ring). Must be at
	// least 8.
	Blocks uint64
	// CheckpointFrac triggers checkpointing when the ring is fuller than
	// this fraction (default 0.5), modelling JBD2's background flush that
	// keeps the journal from filling.
	CheckpointFrac float64
	// Observe enables commit-phase latency histograms (jbd.* names in the
	// shared Recorder), measured on Clock. Both must be set; off by
	// default, costing the commit path nothing.
	Observe bool
	// Clock is the simulated clock phases are measured on (required for
	// Observe; the journal itself never charges time to it — the devices
	// below do).
	Clock *sim.Clock
}

// Open creates or recovers a journal on store. If the superblock is
// present, recovery replays every sealed transaction (Section 2.3);
// otherwise the journal is formatted.
func Open(store BlockStore, rec *metrics.Recorder, opts Options) (*Journal, error) {
	if opts.Blocks < 8 {
		return nil, fmt.Errorf("jbd: journal of %d blocks is too small", opts.Blocks)
	}
	j := &Journal{
		store:     store,
		rec:       rec,
		start:     opts.Start,
		blocks:    opts.Blocks,
		area:      opts.Blocks - 1,
		seq:       1,
		tailSeq:   1,
		pending:   make(map[uint64][]byte),
		pendingBy: make(map[uint64]uint64),
	}
	if opts.Observe && opts.Clock != nil {
		j.clock = opts.Clock
		j.hLog = rec.Hist(metrics.HistJBDLog)
		j.hCommitBlk = rec.Hist(metrics.HistJBDCommitBlk)
		j.hCkpt = rec.Hist(metrics.HistJBDCheckpoint)
		j.hTxn = rec.Hist(metrics.HistJBDCommit)
	}
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := store.ReadBlock(j.start, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) == jMagic &&
		binary.LittleEndian.Uint32(buf[4:8]) == typeSuper {
		if err := j.recover(buf); err != nil {
			return nil, err
		}
	} else {
		if err := j.writeSuper(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// ringBlock maps a monotonic ring position to a device block number.
func (j *Journal) ringBlock(pos uint64) uint64 {
	return j.start + 1 + pos%j.area
}

func (j *Journal) freeSpace() uint64 { return j.area - (j.head - j.tail) }

// writeSuper persists the journal superblock. The recovery-critical pair
// (tailSeq, tail) is packed into ONE aligned 8-byte word: on the memory
// bus, separate words of a block write can persist independently across a
// crash, and a torn pair would make recovery scan from the wrong place
// and silently drop sealed transactions. Packing bounds both values to 32
// bits — JBD2 itself uses 32-bit sequence numbers — and Commit/checkpoint
// guard the bound explicitly.
func (j *Journal) writeSuper() error {
	if j.tailSeq > maxSuper32 || j.tail > maxSuper32 {
		return fmt.Errorf("jbd: journal epoch overflow (tailSeq %d, tail %d)", j.tailSeq, j.tail)
	}
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], jMagic)
	binary.LittleEndian.PutUint32(buf[4:8], typeSuper)
	binary.LittleEndian.PutUint64(buf[8:16], j.tailSeq<<32|j.tail)
	j.rec.Inc(metrics.JournalMeta)
	return j.store.WriteBlock(j.start, buf)
}

// maxSuper32 bounds the packed superblock fields.
const maxSuper32 = 1<<32 - 1

// spaceNeeded returns the journal blocks one transaction of n updates and
// r revocations occupies: descriptors + log blocks + revoke blocks +
// commit block.
func spaceNeeded(n, r int) uint64 {
	descs := (n + tagsPerDesc - 1) / tagsPerDesc
	if n == 0 {
		descs = 0
	}
	revs := (r + tagsPerDesc - 1) / tagsPerDesc
	return uint64(descs + n + revs + 1)
}

// Commit seals the given updates as one journal transaction: descriptor
// block(s), the log copies of the data, then the commit block. When the
// journal is too full, the oldest transactions are checkpointed first.
func (j *Journal) Commit(updates []Update) error {
	return j.CommitTxn(Txn{Updates: updates})
}

// CommitTxn seals a transaction that may also revoke blocks. Revoke
// records are written before the commit block, exactly as JBD2 places its
// revoke blocks inside the transaction.
func (j *Journal) CommitTxn(txn Txn) error {
	updates := txn.Updates
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if len(updates) == 0 && len(txn.Revoked) == 0 {
		return nil
	}
	need := spaceNeeded(len(updates), len(txn.Revoked))
	if need > j.area {
		return ErrTooLarge
	}
	var tTxn int64
	if j.clock != nil {
		tTxn = int64(j.clock.Now())
		defer func() { j.hTxn.Record(int64(j.clock.Now()) - tTxn) }()
	}
	for j.freeSpace() < need {
		if err := j.checkpointOldest(); err != nil {
			return err
		}
	}

	seq := j.seq
	homes := make([]uint64, len(updates))
	for i, u := range updates {
		homes[i] = u.No
	}

	// Descriptor blocks, each tagging up to tagsPerDesc updates, followed
	// by the corresponding log blocks.
	var tLog int64
	if j.clock != nil {
		tLog = int64(j.clock.Now())
	}
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	for base := 0; base < len(updates); base += tagsPerDesc {
		n := len(updates) - base
		if n > tagsPerDesc {
			n = tagsPerDesc
		}
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint32(buf[0:4], jMagic)
		binary.LittleEndian.PutUint32(buf[4:8], typeDesc)
		binary.LittleEndian.PutUint64(buf[8:16], seq)
		binary.LittleEndian.PutUint64(buf[16:24], uint64(n))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[32+8*i:], updates[base+i].No)
		}
		if err := j.store.WriteBlock(j.ringBlock(j.head), buf); err != nil {
			return err
		}
		j.head++
		j.rec.Inc(metrics.JournalMeta)
		for i := 0; i < n; i++ {
			u := updates[base+i]
			if len(u.Data) != BlockSize {
				return fmt.Errorf("jbd: update for block %d has %d bytes", u.No, len(u.Data))
			}
			if err := j.store.WriteBlock(j.ringBlock(j.head), u.Data); err != nil {
				return err
			}
			j.head++
			j.rec.Inc(metrics.JournalBlocks)
		}
	}

	// Revoke blocks, each listing up to tagsPerDesc revoked home blocks.
	for base := 0; base < len(txn.Revoked); base += tagsPerDesc {
		n := len(txn.Revoked) - base
		if n > tagsPerDesc {
			n = tagsPerDesc
		}
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint32(buf[0:4], jMagic)
		binary.LittleEndian.PutUint32(buf[4:8], typeRevoke)
		binary.LittleEndian.PutUint64(buf[8:16], seq)
		binary.LittleEndian.PutUint64(buf[16:24], uint64(n))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[32+8*i:], txn.Revoked[base+i])
		}
		if err := j.store.WriteBlock(j.ringBlock(j.head), buf); err != nil {
			return err
		}
		j.head++
		j.rec.Inc(metrics.JournalMeta)
	}

	var tCommitBlk int64
	if j.clock != nil {
		tCommitBlk = int64(j.clock.Now())
		j.hLog.Record(tCommitBlk - tLog)
	}

	// Commit block seals the transaction. The store is synchronous, so
	// everything above is durable before this write begins (the flush
	// barrier JBD2 issues before its commit block).
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], jMagic)
	binary.LittleEndian.PutUint32(buf[4:8], typeCommit)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	if err := j.store.WriteBlock(j.ringBlock(j.head), buf); err != nil {
		return err
	}
	j.head++
	j.rec.Inc(metrics.JournalMeta)
	j.rec.Inc(metrics.JournalCommit)
	if j.clock != nil {
		j.hCommitBlk.Record(int64(j.clock.Now()) - tCommitBlk)
	}

	// Bookkeeping: this transaction now owns the latest version of its
	// blocks until a later transaction overwrites them; revoked blocks
	// lose any pending version (their contents are dead).
	for _, u := range updates {
		d := make([]byte, BlockSize)
		copy(d, u.Data)
		j.pending[u.No] = d
		j.pendingBy[u.No] = seq
	}
	for _, no := range txn.Revoked {
		delete(j.pending, no)
		delete(j.pendingBy, no)
	}
	j.live = append(j.live, committedTxn{seq: seq, homes: homes, endPos: j.head})
	j.seq++
	return nil
}

// checkpointOldest writes the oldest committed transaction's blocks to
// their home locations (the second write of the double-write pair) and
// advances the journal tail. Blocks superseded by a later transaction are
// skipped, exactly as JBD2 skips buffers that migrated to a newer
// transaction.
func (j *Journal) checkpointOldest() error {
	if len(j.live) == 0 {
		return errors.New("jbd: journal full with nothing to checkpoint")
	}
	if j.clock != nil {
		t0 := int64(j.clock.Now())
		defer func() { j.hCkpt.Record(int64(j.clock.Now()) - t0) }()
	}
	t := j.live[0]
	for _, home := range t.homes {
		if j.pendingBy[home] != t.seq {
			continue // a later transaction owns this block now
		}
		if err := j.store.WriteBlock(home, j.pending[home]); err != nil {
			return err
		}
		j.rec.Inc(metrics.JournalCkptBlks)
		delete(j.pending, home)
		delete(j.pendingBy, home)
	}
	j.live = j.live[1:]
	j.tail = t.endPos
	j.tailSeq = t.seq + 1
	return j.writeSuper()
}

// MaybeCheckpoint checkpoints old transactions until the ring occupancy
// drops below the configured fraction. The file system calls it after
// commits, modelling JBD2's kjournald background work.
func (j *Journal) MaybeCheckpoint(frac float64) error {
	if frac <= 0 {
		frac = 0.5
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	for float64(j.head-j.tail) > frac*float64(j.area) && len(j.live) > 0 {
		if err := j.checkpointOldest(); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointAll drains the journal completely (unmount path).
func (j *Journal) CheckpointAll() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	for len(j.live) > 0 {
		if err := j.checkpointOldest(); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlock serves a read with read-your-committed-writes semantics: the
// latest committed (possibly un-checkpointed) version wins over the home
// location.
func (j *Journal) ReadBlock(no uint64, p []byte) error {
	j.mu.Lock()
	if d, ok := j.pending[no]; ok {
		copy(p, d)
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	return j.store.ReadBlock(no, p)
}

// Close drains and closes the journal.
func (j *Journal) Close() error {
	if err := j.CheckpointAll(); err != nil {
		return err
	}
	j.mu.Lock()
	j.closed = true
	j.mu.Unlock()
	return nil
}

// PendingBlocks reports how many committed blocks await checkpointing
// (for tests).
func (j *Journal) PendingBlocks() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// recover scans the ring from the persisted tail, replaying every sealed
// transaction to its home location and discarding a trailing unsealed
// transaction (redo journalling, Section 2.3). Like JBD2, recovery is two
// passes: the first collects sealed transactions and revocation records;
// the second replays logged blocks, skipping any block revoked by the
// same or a later transaction (replay must not resurrect freed contents).
func (j *Journal) recover(super []byte) error {
	packed := binary.LittleEndian.Uint64(super[8:16])
	j.tailSeq = packed >> 32
	j.tail = packed & maxSuper32
	if j.tailSeq == 0 {
		j.tailSeq = 1
	}
	j.head = j.tail
	j.seq = j.tailSeq

	type logged struct {
		home uint64
		data []byte
	}
	type sealedTxn struct {
		seq    uint64
		blocks []logged
	}

	var txns []sealedTxn
	revokedBy := make(map[uint64]uint64) // home block -> highest revoking seq

	pos := j.tail
	expect := j.tailSeq
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	for pos-j.tail < j.area {
		var txn sealedTxn
		txn.seq = expect
		var revs []uint64
		p := pos
		sealed := false
	scan:
		for p-j.tail < j.area {
			if err := j.store.ReadBlock(j.ringBlock(p), buf); err != nil {
				return err
			}
			if binary.LittleEndian.Uint32(buf[0:4]) != jMagic ||
				binary.LittleEndian.Uint64(buf[8:16]) != expect {
				break scan // unsealed tail: discard
			}
			switch binary.LittleEndian.Uint32(buf[4:8]) {
			case typeDesc:
				n := int(binary.LittleEndian.Uint64(buf[16:24]))
				if n <= 0 || n > tagsPerDesc {
					break scan
				}
				homes := make([]uint64, n)
				for i := 0; i < n; i++ {
					homes[i] = binary.LittleEndian.Uint64(buf[32+8*i:])
				}
				p++
				for i := 0; i < n; i++ {
					if p-j.tail >= j.area {
						break scan
					}
					d := make([]byte, BlockSize)
					if err := j.store.ReadBlock(j.ringBlock(p), d); err != nil {
						return err
					}
					txn.blocks = append(txn.blocks, logged{home: homes[i], data: d})
					p++
				}
			case typeRevoke:
				n := int(binary.LittleEndian.Uint64(buf[16:24]))
				if n <= 0 || n > tagsPerDesc {
					break scan
				}
				for i := 0; i < n; i++ {
					revs = append(revs, binary.LittleEndian.Uint64(buf[32+8*i:]))
				}
				p++
			case typeCommit:
				p++
				sealed = true
				break scan
			default:
				break scan
			}
		}
		if !sealed {
			break
		}
		txns = append(txns, txn)
		for _, no := range revs {
			if revokedBy[no] < expect {
				revokedBy[no] = expect
			}
		}
		pos = p
		expect++
	}

	// Pass 2: replay in order, honoring revocations.
	for _, txn := range txns {
		for _, l := range txn.blocks {
			if rs, ok := revokedBy[l.home]; ok && rs >= txn.seq {
				continue // revoked by this or a later transaction
			}
			if err := j.store.WriteBlock(l.home, l.data); err != nil {
				return err
			}
			j.rec.Inc(metrics.JournalCkptBlks)
		}
	}

	// Everything replayed; reset to an empty journal at the scan point.
	j.tail = pos
	j.head = pos
	j.tailSeq = expect
	j.seq = expect
	return j.writeSuper()
}
