// Package errs holds the sentinel errors shared across the storage
// layers. Each layer (core, fs, stack) wraps these with its own prefixed
// message, so a caller can match the condition with one errors.Is target
// regardless of which layer surfaced it:
//
//	if errors.Is(err, tinca.ErrClosed) { ... }
//
// matches core's "cache closed", fs's "filesystem closed" and anything a
// future layer adds, without string comparison. The tinca package
// re-exports these as its public error surface.
package errs

import "errors"

var (
	// ErrClosed: the component (cache, filesystem, stack) has been shut
	// down and rejects further operations.
	ErrClosed = errors.New("storage closed")
	// ErrOutOfRange: a block number, offset or length falls outside the
	// addressable range of the target (disk size, file size, buffer).
	ErrOutOfRange = errors.New("out of range")
	// ErrViewExpired: a zero-copy read view was used after Close
	// released its pin; the bytes it aliased may since have been reused.
	ErrViewExpired = errors.New("view expired")
)
