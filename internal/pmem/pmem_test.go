package pmem

import (
	"bytes"
	"testing"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

func newDev(t *testing.T, size int, prof Profile) (*Device, *metrics.Recorder, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	return New(size, prof, clock, rec), rec, clock
}

func TestStoreIsVolatileUntilFlush(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.Store(0, []byte("hello"))
	// Visible to loads...
	p := make([]byte, 5)
	d.Load(0, p)
	if string(p) != "hello" {
		t.Fatal("load does not see store")
	}
	// ...but lost on a strict crash.
	d.Crash(nil, 0)
	d.Load(0, p)
	if string(p) == "hello" {
		t.Fatal("un-flushed store survived a strict crash")
	}
}

func TestFlushMakesDurable(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.Store(10, []byte("durable"))
	d.CLFlush(10, 7)
	d.SFence()
	d.Crash(nil, 0)
	p := make([]byte, 7)
	d.Load(10, p)
	if string(p) != "durable" {
		t.Fatalf("flushed store lost: %q", p)
	}
}

func TestCrashEvictionKeepsSomeDirtyLines(t *testing.T) {
	d, _, _ := newDev(t, 64*100, NVDIMM)
	for l := 0; l < 100; l++ {
		d.Store(l*64, []byte{0xAB})
	}
	d.Crash(sim.NewRand(1), 0.5)
	kept := 0
	p := make([]byte, 1)
	for l := 0; l < 100; l++ {
		d.Load(l*64, p)
		if p[0] == 0xAB {
			kept++
		}
	}
	if kept == 0 || kept == 100 {
		t.Fatalf("evictP=0.5 kept %d/100 lines; expected a proper subset", kept)
	}
	// evictP=1 keeps everything.
	d2, _, _ := newDev(t, 64*10, NVDIMM)
	for l := 0; l < 10; l++ {
		d2.Store(l*64, []byte{0xCD})
	}
	d2.Crash(sim.NewRand(2), 1)
	for l := 0; l < 10; l++ {
		d2.Load(l*64, p)
		if p[0] != 0xCD {
			t.Fatal("evictP=1 dropped a line")
		}
	}
}

func TestAtomic8And16(t *testing.T) {
	d, rec, _ := newDev(t, 4096, NVDIMM)
	d.Persist8(64, 0xDEADBEEF)
	if got := d.Load8(64); got != 0xDEADBEEF {
		t.Fatalf("Load8 = %#x", got)
	}
	var v [16]byte
	copy(v[:], "sixteen-byte-val")
	d.Persist16(128, v)
	if got := d.Load16(128); got != v {
		t.Fatal("Load16 mismatch")
	}
	if rec.Get(metrics.NVMAtomic8) != 1 || rec.Get(metrics.NVMAtomic16) != 1 {
		t.Fatal("atomic ops not counted")
	}
	d.Crash(nil, 0)
	if got := d.Load8(64); got != 0xDEADBEEF {
		t.Fatal("Persist8 not durable")
	}
	if got := d.Load16(128); got != v {
		t.Fatal("Persist16 not durable")
	}
}

func TestMisalignedAtomicsPanic(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	for _, fn := range []func(){
		func() { d.Store8(4, 1) },
		func() { d.Load8(4) },
		func() { d.Store16(8, [16]byte{}) },
		func() { d.Load16(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("misaligned access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range store did not panic")
		}
	}()
	d.Store(4090, make([]byte, 100))
}

func TestCLFlushCountsLines(t *testing.T) {
	d, rec, _ := newDev(t, 4096, NVDIMM)
	d.Store(0, make([]byte, 4096))
	d.CLFlush(0, 4096)
	if got := rec.Get(metrics.NVMCLFlush); got != 64 {
		t.Fatalf("clflush lines = %d, want 64", got)
	}
	// A flush spanning a line boundary counts both lines.
	d.CLFlush(60, 8)
	if got := rec.Get(metrics.NVMCLFlush); got != 66 {
		t.Fatalf("boundary flush lines = %d, want 66", got)
	}
}

func TestProfilesChargeDifferently(t *testing.T) {
	cost := func(prof Profile) int64 {
		d, _, clock := newDev(t, 4096, prof)
		d.Store(0, make([]byte, 4096))
		d.CLFlush(0, 4096)
		d.SFence()
		return int64(clock.Now())
	}
	nv, st, pc := cost(NVDIMM), cost(STTRAM), cost(PCM)
	if !(nv < st && st < pc) {
		t.Fatalf("expected NVDIMM < STT-RAM < PCM, got %d %d %d", nv, st, pc)
	}
	if fl := cost(NoFlushCost); fl >= nv {
		t.Fatalf("NoFlushCost (%d) should be cheaper than NVDIMM (%d)", fl, nv)
	}
}

func TestArmCrashFiresAndCatch(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.ArmCrash(2)
	crashed, details := CatchCrash(func() {
		d.Store(0, []byte{1}) // countdown 2->1
		d.Store(64, []byte{2})
		d.Store(128, []byte{3}) // fires here
		t.Fatal("unreachable")
	})
	if !crashed {
		t.Fatal("armed crash did not fire")
	}
	if details.Op != "store" {
		t.Fatalf("crash op = %q", details.Op)
	}
	// Device is usable again afterwards.
	d.Store(0, []byte{9})
}

func TestDisarmCancels(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.ArmCrash(1)
	d.DisarmCrash()
	crashed, _ := CatchCrash(func() {
		for i := 0; i < 10; i++ {
			d.Store(0, []byte{byte(i)})
		}
	})
	if crashed {
		t.Fatal("disarmed crash fired")
	}
}

func TestCatchCrashRepanicsOthers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	CatchCrash(func() { panic("unrelated") })
}

func TestPersistRangeRoundTrip(t *testing.T) {
	d, _, _ := newDev(t, 8192, PCM)
	want := bytes.Repeat([]byte{0x5A}, 4096)
	d.PersistRange(4096, want)
	d.Crash(nil, 0)
	got := make([]byte, 4096)
	d.Load(4096, got)
	if !bytes.Equal(got, want) {
		t.Fatal("PersistRange not durable")
	}
}

func TestDirtyLinesTracking(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	if d.DirtyLines() != 0 {
		t.Fatal("fresh device dirty")
	}
	d.Store(0, make([]byte, 128)) // 2 lines
	if got := d.DirtyLines(); got != 2 {
		t.Fatalf("dirty = %d, want 2", got)
	}
	d.CLFlush(0, 64)
	if got := d.DirtyLines(); got != 1 {
		t.Fatalf("dirty after flush = %d, want 1", got)
	}
}

func TestSnapshotPersistIsolated(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.PersistRange(0, []byte{1, 2, 3})
	snap := d.SnapshotPersist()
	snap[0] = 99
	p := make([]byte, 1)
	d.Load(0, p)
	if p[0] != 1 {
		t.Fatal("SnapshotPersist returned aliased memory")
	}
}

func TestPersistRangeDurableProperty(t *testing.T) {
	// Property: any persisted range survives the strictest crash; any
	// un-flushed store does not.
	dev, _, _ := newDev(t, 64<<10, PCM)
	type rangeOp struct {
		off, n  int
		flushed bool
		stamp   byte
	}
	rng := sim.NewRand(31)
	var ops []rangeOp
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(300)
		off := rng.Intn(64<<10 - n)
		stamp := byte(i + 1)
		data := make([]byte, n)
		for j := range data {
			data[j] = stamp
		}
		flushed := rng.Intn(2) == 0
		if flushed {
			dev.PersistRange(off, data)
		} else {
			dev.Store(off, data)
		}
		ops = append(ops, rangeOp{off: off, n: n, flushed: flushed, stamp: stamp})
	}
	dev.Crash(nil, 0)
	// Replay the op log to compute the expected persistent image: only
	// flushed ranges apply, in order. (A flush also persists overlapping
	// earlier un-flushed stores on shared lines, so expectation is per
	// line: any line covered by a later flush holds its flush-time
	// content. Simplest exact oracle: re-simulate with a shadow byte
	// array applying the same line-flush rule.)
	shadowVol := make([]byte, 64<<10)
	shadowPer := make([]byte, 64<<10)
	for _, op := range ops {
		for j := 0; j < op.n; j++ {
			shadowVol[op.off+j] = op.stamp
		}
		if op.flushed {
			first := op.off / LineSize * LineSize
			last := (op.off + op.n - 1) / LineSize * LineSize
			for b := first; b <= last; b += LineSize {
				copy(shadowPer[b:b+LineSize], shadowVol[b:b+LineSize])
			}
		}
	}
	got := make([]byte, 64<<10)
	dev.Load(0, got)
	if !bytes.Equal(got, shadowPer) {
		for i := range got {
			if got[i] != shadowPer[i] {
				t.Fatalf("first divergence at %d: got %d want %d", i, got[i], shadowPer[i])
			}
		}
	}
}

func TestCrashClearsAtomic16Marks(t *testing.T) {
	// Regression: Crash must not carry 16B-atomicity marks across the
	// failure. A Store16 from before crash #1 must not make the adversary
	// treat the same words as an atomic pair during crash #2.
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.Store16(0, [16]byte{1, 2, 3})
	d.Store16(256, [16]byte{4, 5, 6})
	d.Crash(sim.NewRand(9), 0.5)
	for w, marked := range d.atomic16 {
		if marked {
			t.Fatalf("atomic16 mark for word %d survived Crash", w)
		}
	}
	// The next crash's torn-write model must be free to tear those words:
	// write a plain multi-word store over the formerly-atomic range and
	// check the adversary tears it at least once across trials.
	sawTear := false
	for trial := 0; trial < 200 && !sawTear; trial++ {
		d2, _, _ := newDev(t, 4096, NVDIMM)
		d2.Store16(0, [16]byte{0xAA, 0xAA})
		d2.Crash(sim.NewRand(int64(trial)), 0.5)
		d2.Store(0, bytes.Repeat([]byte{0x55}, 16))
		d2.Crash(sim.NewRand(int64(trial)*7+1), 0.5)
		p := make([]byte, 16)
		d2.Load(0, p)
		if (p[0] == 0x55) != (p[8] == 0x55) {
			sawTear = true
		}
	}
	if !sawTear {
		t.Fatal("second crash never tore the rewritten range; stale atomic16 mark suspected")
	}
}

func TestDisarmResetsCountdown(t *testing.T) {
	// Regression: DisarmCrash must clear the stale fuse, not just the
	// armed flag.
	d, _, _ := newDev(t, 4096, NVDIMM)
	d.ArmCrash(3)
	d.Store(0, []byte{1}) // burn one tick
	d.DisarmCrash()
	d.mu.Lock()
	if d.crashCountdown != 0 {
		d.mu.Unlock()
		t.Fatalf("crashCountdown = %d after DisarmCrash, want 0", d.crashCountdown)
	}
	d.mu.Unlock()
	// Re-arming after a disarm fires at exactly the new fuse.
	d.ArmCrash(2)
	n := 0
	crashed, _ := CatchCrash(func() {
		for i := 0; i < 10; i++ {
			d.Store(0, []byte{byte(i)})
			n++
		}
	})
	if !crashed || n != 2 {
		t.Fatalf("re-armed crash: crashed=%v after %d ops, want crash on op 3", crashed, n)
	}
}

func TestPersistOpsCountsBoundarySpace(t *testing.T) {
	d, _, _ := newDev(t, 4096, NVDIMM)
	if d.PersistOps() != 0 {
		t.Fatal("fresh device has nonzero PersistOps")
	}
	d.Store(0, []byte{1})      // 1
	d.Store8(8, 7)             // 2
	d.Store16(16, [16]byte{})  // 3
	d.CLFlush(0, 64)           // 4
	d.SFence()                 // 5
	d.Load(0, make([]byte, 8)) // loads are not persistence-relevant
	if got := d.PersistOps(); got != 5 {
		t.Fatalf("PersistOps = %d, want 5", got)
	}
	// The counter and ArmCrash agree on the boundary space: arming at
	// boundary b (ops so far) fires on the very next persist op; arming
	// at b+k fires after k more.
	base := d.PersistOps()
	_ = base
	d.ArmCrash(2)
	crashed, _ := CatchCrash(func() {
		d.Store(0, []byte{1})
		d.SFence()
		d.CLFlush(0, 64) // fires here: the (2+1)th op after arming
	})
	if !crashed {
		t.Fatal("crash did not fire at the enumerated boundary")
	}
	if got := d.PersistOps(); got != 5+3 {
		t.Fatalf("PersistOps after crash = %d, want 8 (the firing op counts)", got)
	}
}

func TestTornCrashPreservesAtomicUnits(t *testing.T) {
	// Property: under word-torn crashes, an un-flushed Store16 never
	// half-persists, while a multi-word Store can.
	rng := sim.NewRand(77)
	sawTornStore := false
	for trial := 0; trial < 300; trial++ {
		d, _, _ := newDev(t, 4096, NVDIMM)
		// Baseline: persist known contents.
		base := bytes.Repeat([]byte{0x11}, 64)
		d.PersistRange(0, base)
		// Un-flushed 16B atomic at offset 0 and plain store at offset 32.
		d.Store16(0, [16]byte{0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22,
			0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22})
		d.Store(32, bytes.Repeat([]byte{0x33}, 16))
		d.Crash(rng, 0.5)
		p := make([]byte, 64)
		d.Load(0, p)
		// The 16B unit: all old or all new.
		allOld := bytes.Equal(p[0:16], base[0:16])
		allNew := bytes.Equal(p[0:16], bytes.Repeat([]byte{0x22}, 16))
		if !allOld && !allNew {
			t.Fatalf("trial %d: Store16 torn: % x", trial, p[0:16])
		}
		// The plain 16-byte Store may tear across its two words.
		w1new := p[32] == 0x33
		w2new := p[40] == 0x33
		if w1new != w2new {
			sawTornStore = true
		}
	}
	if !sawTornStore {
		t.Fatal("adversary never tore a plain store; model too weak")
	}
}
