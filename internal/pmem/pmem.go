// Package pmem simulates byte-addressable non-volatile memory attached to
// the memory bus, as used by the paper's prototype (an NVDIMM configured
// with PCM/STT-RAM delays).
//
// The simulator models exactly the properties Tinca's consistency argument
// depends on:
//
//   - Regular stores go to the (volatile) CPU cache and are NOT durable.
//   - CLFlush writes the covering 64-byte cache lines back to the
//     persistence domain; SFence orders flushes against later stores.
//   - Aligned 8-byte and 16-byte stores are failure-atomic (mov /
//     cmpxchg16b with LOCK): after a crash the location holds either the
//     old or the new value, never a mix.
//   - Un-flushed dirty data may persist anyway, in any order and at any
//     granularity down to the 8-byte word, because the CPU can evict cache
//     lines at its own whim and writes within a line are not atomic as a
//     unit. Crash images therefore tear dirty lines word by word,
//     preserving only the 8B/16B atomic units above.
//
// Each operation charges simulated service time to a sim.Clock using a
// per-technology latency profile (Table 1 of the paper), and counts
// clflush/sfence/bytes in a metrics.Recorder — the quantities the paper's
// evaluation normalizes against.
package pmem

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// LineSize is the CPU cache line size in bytes (64B on the paper's Xeon
// E5-2640 platform).
const LineSize = 64

// Profile describes an NVM technology's per-line latencies, following the
// paper's prototype methodology: an NVDIMM runs at DRAM speed, and media
// delays are injected on top to emulate PCM (write/read +180ns/+50ns) and
// STT-RAM (+50ns/+50ns). LineFlushNS is the full cost of one clflush to
// that medium; LineReadNS the cost of one cache-line load from the DIMM.
type Profile struct {
	Name        string
	LineStoreNS int64 // per-line store into the CPU cache (memcpy cost)
	LineReadNS  int64 // per-line load
	LineFlushNS int64 // per-line clflush (includes the instruction cost)
	FenceNS     int64 // per sfence
	// Parallel is the DIMM's internal load parallelism: how many in-flight
	// block-sized Loads the memory channels/banks overlap. When k Loads are
	// in flight concurrently, each charges serviceNS/min(k, Parallel) to
	// the shared clock, so k fully overlapped copies advance simulated
	// time by roughly one copy in total — but only when the host actually
	// issues them concurrently. A host that serializes its reads (for
	// example under a shard mutex) keeps inflight at 1 and pays full
	// price, which is exactly the structure the read-hit scaling figure
	// measures. Only multi-line Load is overlapped; the small atomic
	// Load8/Load16 and every persistence-relevant store/flush/fence keep
	// the fully serialized charging model. 0 or 1 disables overlap; every
	// stock profile uses it, so existing figures and crash sweeps are
	// unchanged.
	Parallel int
	// PersistParallel is the DIMM's internal write-bank parallelism: the
	// persist-side analogue of Parallel (see Banks). When k goroutines
	// concurrently issue persistence-relevant operations — stores, flushes,
	// fences — each charges serviceNS/min(k, PersistParallel), so commit
	// paths that genuinely overlap their persists (e.g. independent
	// per-shard ring seals) advance simulated time by roughly one seal's
	// worth per bank. A path that serializes its persists (a single seal
	// leader, everything under one mutex) keeps inflight at 1 and pays
	// full price — exactly the structure the writer-scaling figure
	// measures. Only the charged service time is discounted: data
	// movement, crash-boundary counting (persistOps), wear and every
	// counter are untouched, so crash images and boundary spaces are
	// identical with or without banks. 0 or 1 disables the overlap; every
	// stock profile leaves it off, so existing deterministic figures are
	// unchanged.
	PersistParallel int
}

// Base costs of the DRAM path itself: what a cache-line read from DIMM, a
// clflush instruction, and an sfence cost even on plain DRAM.
const (
	baseLineStoreNS = 10
	baseLineReadNS  = 50
	baseLineFlushNS = 100
	baseFenceNS     = 50
)

// CLWBVariant returns the profile with the flush cost reduced to model
// the clwb instruction (Section 2.1: "clflushopt and clwb have been
// proposed to substitute clflush but still bring in overheads"): the line
// is written back without being invalidated and the instruction overhead
// is lower, but the media write cost remains.
func CLWBVariant(p Profile) Profile {
	saved := int64(baseLineFlushNS * 6 / 10) // clwb keeps the line in cache
	if p.LineFlushNS > saved {
		p.LineFlushNS -= saved
	}
	p.Name = p.Name + "+clwb"
	return p
}

// Channels derives a profile whose block-sized loads overlap up to depth
// concurrent requests (the memory-channel/bank parallelism of a real DIMM,
// the analogue of blockdev.NCQ for the NVM side). Per-line costs are
// unchanged; only the overlap granted to concurrently issued Loads.
func Channels(p Profile, depth int) Profile {
	if depth < 1 {
		depth = 1
	}
	p.Parallel = depth
	p.Name = fmt.Sprintf("%s+ch%d", p.Name, depth)
	return p
}

// Banks derives a profile whose persistence-relevant operations (stores,
// flushes, fences) overlap up to depth concurrent issuers — the
// write-bank parallelism of a real DIMM, the persist-side analogue of
// Channels. Per-operation costs are unchanged; only the overlap granted
// to concurrently issued persists.
func Banks(p Profile, depth int) Profile {
	if depth < 1 {
		depth = 1
	}
	p.PersistParallel = depth
	p.Name = fmt.Sprintf("%s+bk%d", p.Name, depth)
	return p
}

// Technology profiles from Table 1 / Section 5.1 of the paper.
var (
	NVDIMM = Profile{Name: "NVDIMM", LineStoreNS: baseLineStoreNS,
		LineReadNS: baseLineReadNS, LineFlushNS: baseLineFlushNS, FenceNS: baseFenceNS}
	STTRAM = Profile{Name: "STT-RAM", LineStoreNS: baseLineStoreNS,
		LineReadNS: baseLineReadNS + 50, LineFlushNS: baseLineFlushNS + 50, FenceNS: baseFenceNS}
	PCM = Profile{Name: "PCM", LineStoreNS: baseLineStoreNS,
		LineReadNS: baseLineReadNS + 50, LineFlushNS: baseLineFlushNS + 180, FenceNS: baseFenceNS}
	// NoFlushCost models the Figure 3(b) baseline that omits clflush and
	// sfence entirely: persistence operations still happen functionally
	// but cost nothing, isolating the ordering-instruction overhead.
	NoFlushCost = Profile{Name: "DRAM-noflush", LineStoreNS: baseLineStoreNS,
		LineReadNS: baseLineReadNS, LineFlushNS: 0, FenceNS: 0}
)

// ErrCrash is the sentinel carried by the panic a Device raises when an
// armed crash point fires. Harnesses recover it with RecoverCrash.
type ErrCrash struct{ Op string }

func (e ErrCrash) Error() string { return "pmem: injected crash during " + e.Op }

// Device is a simulated NVM DIMM. All methods are safe for concurrent use;
// the lock also makes Store8/Store16 atomic with respect to crash-image
// generation.
type Device struct {
	mu       sync.Mutex
	size     int
	persist  []byte // contents of the persistence domain (survives crash)
	volatile []byte // CPU-visible contents (lost on crash unless flushed/evicted)
	dirty    []bool // per-line dirty flag (volatile differs from persist)
	nlines   int

	prof  Profile
	clock *sim.Clock
	rec   *metrics.Recorder
	wear  []uint32 // per-line media writes (endurance accounting)

	// inflightLoads counts block-sized Loads currently inside Load, for
	// the Profile.Parallel overlap model. Untouched (always 0 vs 1
	// transitions with no charging effect) on stock profiles.
	inflightLoads atomic.Int64

	// inflightPersists counts persistence-relevant operations currently
	// issued, for the Profile.PersistParallel overlap model. Never touched
	// on stock profiles (PersistParallel <= 1 skips even the increment).
	inflightPersists atomic.Int64

	// atomic16 marks the start words of 16B ranges last written by
	// Store16: on a torn crash those two words persist together (the
	// cmpxchg16b contract). One flag per 8B word.
	atomic16 []bool

	// Crash injection: when armed, the device panics with ErrCrash after
	// the countdown of persistence-relevant operations reaches zero.
	// persistOps counts every persistence-relevant operation (stores,
	// flushes, fences) unconditionally, so harnesses can enumerate the
	// crash-boundary space of a workload.
	crashArmed     bool
	crashCountdown int64
	persistOps     int64

	// Flush/fence observation (Observe): distribution of cache lines per
	// CLFlush burst and of the simulated time between successive fences —
	// the two shapes that tell whether a commit path batches its persists
	// or stutters them. Off by default; the hot path then pays one branch
	// per CLFlush/SFence.
	observe     bool
	obsFlush    *metrics.Histogram
	obsFence    *metrics.Histogram
	lastFenceNS int64
}

// New creates a device of the given size (rounded up to a whole number of
// cache lines) with the given technology profile. clock and rec may not be
// nil; share them across the whole storage stack.
func New(size int, prof Profile, clock *sim.Clock, rec *metrics.Recorder) *Device {
	if size <= 0 {
		panic("pmem: non-positive size")
	}
	if clock == nil || rec == nil {
		panic("pmem: nil clock or recorder")
	}
	nlines := (size + LineSize - 1) / LineSize
	size = nlines * LineSize
	return &Device{
		size:     size,
		persist:  make([]byte, size),
		volatile: make([]byte, size),
		dirty:    make([]bool, nlines),
		nlines:   nlines,
		prof:     prof,
		clock:    clock,
		rec:      rec,
		wear:     make([]uint32, nlines),
		atomic16: make([]bool, size/8),
	}
}

// Observe enables (or disables) flush/fence histograms: lines per CLFlush
// burst into metrics.HistNVMFlushLines and simulated ns between fences
// into metrics.HistNVMFenceGap, recorded in the device's Recorder.
func (d *Device) Observe(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.observe = on
	if on && d.obsFlush == nil {
		d.obsFlush = d.rec.Hist(metrics.HistNVMFlushLines)
		d.obsFence = d.rec.Hist(metrics.HistNVMFenceGap)
		d.lastFenceNS = int64(d.clock.Now())
	}
}

// Size returns the usable size in bytes.
func (d *Device) Size() int { return d.size }

// Profile returns the technology profile in use.
func (d *Device) Profile() Profile { return d.prof }

// Clock returns the simulated clock the device charges.
func (d *Device) Clock() *sim.Clock { return d.clock }

// Recorder returns the metrics recorder the device charges.
func (d *Device) Recorder() *metrics.Recorder { return d.rec }

func (d *Device) check(off, n int) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside device of %d bytes", off, off+n, d.size))
	}
}

func (d *Device) maybeCrash(op string) {
	d.persistOps++
	if !d.crashArmed {
		return
	}
	d.crashCountdown--
	if d.crashCountdown < 0 {
		d.crashArmed = false
		panic(ErrCrash{Op: op})
	}
}

// admitPersist enters a persistence-relevant operation into the in-flight
// window for bank-capable profiles (PersistParallel > 1), mirroring
// admitLoad: the yield lets every other goroutine about to persist run
// its own admitPersist before this one reads the window in chargePersist,
// so logically concurrent persists count each other even when the host
// runs goroutines one at a time. Issuers serialized by a host mutex stay
// blocked on that mutex, not runnable, so inflight stays at 1 and they
// pay full price. Stock profiles skip everything, including the atomic.
func (d *Device) admitPersist() {
	if d.prof.PersistParallel > 1 {
		d.inflightPersists.Add(1)
		runtime.Gosched()
	}
}

func (d *Device) releasePersist() {
	if d.prof.PersistParallel > 1 {
		d.inflightPersists.Add(-1)
	}
}

// chargePersist advances the simulated clock by one persist operation's
// service time, discounted by the overlap the profile's bank depth grants
// to the persists currently in flight (see chargeLoad for the additive-
// clock argument). Equal to a plain AdvanceNS on stock profiles.
func (d *Device) chargePersist(ns int64) {
	if q := int64(d.prof.PersistParallel); q > 1 {
		if k := d.inflightPersists.Load(); k > 1 {
			if k > q {
				k = q
			}
			ns /= k
		}
	}
	d.clock.AdvanceNS(ns)
}

// Store copies p into the device at off. The write is volatile: it is not
// durable until the covering lines are flushed (or happen to be evicted at
// crash time).
func (d *Device) Store(off int, p []byte) {
	d.check(off, len(p))
	d.admitPersist()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.releasePersist()
	d.maybeCrash("store")
	copy(d.volatile[off:off+len(p)], p)
	d.clearAtomic16(off, len(p))
	d.markDirty(off, len(p))
	d.chargePersist(int64(coveringLines(off, len(p))) * d.prof.LineStoreNS)
	d.rec.Add(metrics.NVMBytesWrite, int64(len(p)))
}

// Store8 performs a failure-atomic aligned 8-byte store (regular mov on
// x86). off must be 8-byte aligned.
func (d *Device) Store8(off int, v uint64) {
	if off%8 != 0 {
		panic("pmem: Store8 misaligned")
	}
	d.check(off, 8)
	d.admitPersist()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.releasePersist()
	d.maybeCrash("store8")
	binary.LittleEndian.PutUint64(d.volatile[off:off+8], v)
	d.clearAtomic16(off, 8)
	d.markDirty(off, 8)
	d.chargePersist(d.prof.LineStoreNS)
	d.rec.Inc(metrics.NVMAtomic8)
	d.rec.Add(metrics.NVMBytesWrite, 8)
}

// Store16 performs a failure-atomic aligned 16-byte store (LOCK
// cmpxchg16b). off must be 16-byte aligned.
func (d *Device) Store16(off int, v [16]byte) {
	if off%16 != 0 {
		panic("pmem: Store16 misaligned")
	}
	d.check(off, 16)
	d.admitPersist()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.releasePersist()
	d.maybeCrash("store16")
	copy(d.volatile[off:off+16], v[:])
	d.atomic16[off/8] = true
	d.atomic16[off/8+1] = false
	d.markDirty(off, 16)
	d.chargePersist(d.prof.LineStoreNS)
	d.rec.Inc(metrics.NVMAtomic16)
	d.rec.Add(metrics.NVMBytesWrite, 16)
}

// admitLoad enters a Load into the in-flight window. For overlap-capable
// profiles it then yields the processor: every other goroutine about to
// issue a Load gets to execute its own admitLoad before this one reads the
// window in chargeLoad, so logically concurrent copies count each other
// even when the host runs goroutines one at a time. Serialized hosts are
// unaffected — a Load issued under a mutex keeps every other issuer
// blocked on that mutex, not runnable, so yielding cannot admit them and
// inflight stays at 1. Stock profiles (Parallel <= 1) skip the yield.
func (d *Device) admitLoad() {
	d.inflightLoads.Add(1)
	if d.prof.Parallel > 1 {
		runtime.Gosched()
	}
}

// chargeLoad advances the simulated clock by one Load's service time,
// discounted by the overlap the profile's channel depth grants to the
// Loads currently in flight (see blockdev.Device.charge for the full
// argument; the additive clock sums charges across goroutines, so the
// discount makes the sum approximate a DIMM serving min(inflight,
// Parallel) copies at once). Serialized callers always pay full price.
func (d *Device) chargeLoad(ns int64) {
	if q := int64(d.prof.Parallel); q > 1 {
		if k := d.inflightLoads.Load(); k > 1 {
			if k > q {
				k = q
			}
			ns /= k
		}
	}
	d.clock.AdvanceNS(ns)
}

// Load copies n bytes at off into p (len(p) bytes are read). Reads see the
// CPU-visible (volatile) contents. Concurrent Loads overlap on profiles
// with channel parallelism (see Profile.Parallel); the copy itself remains
// serialized under the device lock, only the charged service time is
// discounted.
func (d *Device) Load(off int, p []byte) {
	d.check(off, len(p))
	d.admitLoad()
	d.mu.Lock()
	copy(p, d.volatile[off:off+len(p)])
	d.mu.Unlock()
	lines := coveringLines(off, len(p))
	d.rec.Add(metrics.NVMBytesRead, int64(len(p)))
	d.chargeLoad(int64(lines) * d.prof.LineReadNS)
	d.inflightLoads.Add(-1)
}

// ViewBytes returns a slice aliasing the CPU-visible contents of [off,
// off+n) — the zero-copy read primitive behind core's ReadView. It is
// charged exactly like a Load of the same range (service time, bytes-read
// counter, overlap discount), so a zero-copy hit and a copying hit cost
// the same simulated NVM time and differ only in host-DRAM work; the
// consumer's later byte accesses are free, as they would be on real
// mapped PM.
//
// Safety contract: the caller must guarantee no Store/Persist targets the
// range while it holds the slice (core's view pins provide this — a
// pinned data block is never recycled by the allocator), and must drop
// the slice before any Crash/Restore cycle (those rewrite the whole
// volatile array). The mutex acquisition here orders the view after
// every store that published the range's contents.
func (d *Device) ViewBytes(off, n int) []byte {
	d.check(off, n)
	d.admitLoad()
	d.mu.Lock()
	v := d.volatile[off : off+n : off+n]
	d.mu.Unlock()
	lines := coveringLines(off, n)
	d.rec.Add(metrics.NVMBytesRead, int64(n))
	d.chargeLoad(int64(lines) * d.prof.LineReadNS)
	d.inflightLoads.Add(-1)
	return v
}

// Load8 reads an aligned 8-byte value.
func (d *Device) Load8(off int) uint64 {
	if off%8 != 0 {
		panic("pmem: Load8 misaligned")
	}
	d.check(off, 8)
	d.mu.Lock()
	defer d.mu.Unlock()
	v := binary.LittleEndian.Uint64(d.volatile[off : off+8])
	d.clock.AdvanceNS(d.prof.LineReadNS)
	d.rec.Add(metrics.NVMBytesRead, 8)
	return v
}

// Load16 reads an aligned 16-byte value.
func (d *Device) Load16(off int) (v [16]byte) {
	if off%16 != 0 {
		panic("pmem: Load16 misaligned")
	}
	d.check(off, 16)
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(v[:], d.volatile[off:off+16])
	d.clock.AdvanceNS(d.prof.LineReadNS)
	d.rec.Add(metrics.NVMBytesRead, 16)
	return v
}

// CLFlush flushes every cache line covering [off, off+n) to the
// persistence domain, charging one clflush per line.
func (d *Device) CLFlush(off, n int) {
	d.check(off, n)
	d.admitPersist()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.releasePersist()
	d.maybeCrash("clflush")
	first := off / LineSize
	last := (off + n - 1) / LineSize
	if n == 0 {
		last = first
	}
	for l := first; l <= last; l++ {
		b := l * LineSize
		copy(d.persist[b:b+LineSize], d.volatile[b:b+LineSize])
		d.dirty[l] = false
		d.wear[l]++
	}
	lines := int64(last - first + 1)
	d.rec.Add(metrics.NVMCLFlush, lines)
	d.chargePersist(lines * d.prof.LineFlushNS)
	if d.observe {
		d.obsFlush.Record(lines)
	}
}

// SFence issues a store fence. In this synchronous simulation flushes are
// already complete when CLFlush returns, so the fence only charges its cost
// and counts; the ordering guarantee it provides in hardware is what makes
// the persist-then-continue sequencing of callers valid.
func (d *Device) SFence() {
	d.admitPersist()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.releasePersist()
	d.maybeCrash("sfence")
	d.rec.Inc(metrics.NVMSFence)
	d.chargePersist(d.prof.FenceNS)
	if d.observe {
		now := int64(d.clock.Now())
		d.obsFence.Record(now - d.lastFenceNS)
		d.lastFenceNS = now
	}
}

// PersistRange is the common {store, clflush, sfence} sequence: store p at
// off, flush the covering lines and fence.
func (d *Device) PersistRange(off int, p []byte) {
	d.Store(off, p)
	d.CLFlush(off, len(p))
	d.SFence()
}

// Persist8 is the atomic-8B {store, clflush, sfence} sequence.
func (d *Device) Persist8(off int, v uint64) {
	d.Store8(off, v)
	d.CLFlush(off, 8)
	d.SFence()
}

// Persist16 is the atomic-16B {cmpxchg16b, clflush, sfence} sequence the
// paper uses for cache-entry updates.
func (d *Device) Persist16(off int, v [16]byte) {
	d.Store16(off, v)
	d.CLFlush(off, 16)
	d.SFence()
}

// PersistLineSilent durably writes one whole cache line with the same
// {store, clflush, sfence} discipline as the main log, but charges nothing
// observable: no simulated time, no metrics counters, no wear, no
// flush/fence histograms. It is the flight recorder's write primitive —
// the black box must not perturb the figures it explains (the same
// contract observe.go states for histograms: observability never advances
// the clock).
//
// Crash semantics are NOT silent: the three sub-operations each count as a
// persistence-relevant boundary (exactly like a Store/CLFlush/SFence
// triple), so an armed crash can fire between the store and the flush and
// leave the line dirty — Crash() then tears it word by word like any other
// un-flushed line. This is what makes torn flight records a reachable
// state the decode path must (and does) tolerate.
func (d *Device) PersistLineSilent(off int, line [LineSize]byte) {
	if off%LineSize != 0 {
		panic("pmem: PersistLineSilent misaligned")
	}
	d.check(off, LineSize)
	d.mu.Lock()
	defer d.mu.Unlock()
	// Store: volatile only; the line becomes dirty and torn-able.
	d.maybeCrash("flight-store")
	copy(d.volatile[off:off+LineSize], line[:])
	d.clearAtomic16(off, LineSize)
	d.dirty[off/LineSize] = true
	// CLFlush: write the line back to the persistence domain.
	d.maybeCrash("flight-clflush")
	copy(d.persist[off:off+LineSize], d.volatile[off:off+LineSize])
	d.dirty[off/LineSize] = false
	// SFence: orders this record before the next one's store.
	d.maybeCrash("flight-sfence")
}

// LoadSilent copies n = len(p) bytes at off into p without charging
// simulated time or counters — the flight recorder's read primitive, used
// to decode the black box both live (/blackbox) and after a crash. Reads
// see the CPU-visible contents; immediately after Crash() those equal the
// surviving persistence-domain image.
func (d *Device) LoadSilent(off int, p []byte) {
	d.check(off, len(p))
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(p, d.volatile[off:off+len(p)])
}

// clearAtomic16 drops 16B-atomicity marks overlapping [off, off+n): the
// range was rewritten by a non-16B store, so its halves may tear.
func (d *Device) clearAtomic16(off, n int) {
	first := off / 8
	last := (off + n - 1) / 8
	if first > 0 {
		first-- // a preceding Store16 may span into this word
	}
	for w := first; w <= last && w < len(d.atomic16); w++ {
		d.atomic16[w] = false
	}
}

func (d *Device) markDirty(off, n int) {
	first := off / LineSize
	last := (off + n - 1) / LineSize
	if n == 0 {
		last = first
	}
	for l := first; l <= last; l++ {
		d.dirty[l] = true
	}
}

func coveringLines(off, n int) int {
	if n == 0 {
		return 1
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	return last - first + 1
}

// DirtyLines reports how many cache lines are currently un-flushed.
func (d *Device) DirtyLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, dd := range d.dirty {
		if dd {
			n++
		}
	}
	return n
}

// Crash simulates a power failure. The device's contents become the
// persistence-domain image plus whatever the CPU happened to write back on
// its own before the power died. The eviction model is adversarial down
// to the hardware atomicity contract: within each dirty line, every
// aligned 8-byte word independently persists with probability evictP —
// a *torn* line — except that a 16-byte range last written by Store16
// (LOCK cmpxchg16b) persists atomically as a pair. All dirty state is
// cleared. If r is nil, no dirty data survives (the strictest image).
//
// Crash never charges simulated time. After Crash the device is ready for
// recovery code to read.
func (d *Device) Crash(r *rand.Rand, evictP float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashArmed = false
	d.crashCountdown = 0
	for l := 0; l < d.nlines; l++ {
		if !d.dirty[l] {
			continue
		}
		b := l * LineSize
		if r != nil {
			for w := 0; w < LineSize/8; w++ {
				off := b + w*8
				if d.atomic16[off/8] {
					// cmpxchg16b pair: both words or neither.
					if r.Float64() < evictP {
						copy(d.persist[off:off+16], d.volatile[off:off+16])
						d.wear[l]++
					}
					w++ // skip the second word of the pair
					continue
				}
				if r.Float64() < evictP {
					copy(d.persist[off:off+8], d.volatile[off:off+8])
					d.wear[l]++
				}
			}
		}
		d.dirty[l] = false
	}
	// The 16B-atomicity marks describe stores from *before* this failure;
	// carrying them into the torn-write model of a subsequent crash would
	// promise atomicity the next power cycle never earned.
	for w := range d.atomic16 {
		d.atomic16[w] = false
	}
	copy(d.volatile, d.persist)
}

// ArmCrash arms an injected crash: the device will panic with ErrCrash
// after n more persistence-relevant operations (stores, flushes, fences).
// Use RecoverCrash in a deferred function to catch it, then call Crash to
// materialize the post-failure image.
func (d *Device) ArmCrash(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashArmed = true
	d.crashCountdown = n
}

// DisarmCrash cancels a pending armed crash. The countdown is reset too:
// a later ArmCrash-free sequence must never inherit a stale fuse.
func (d *Device) DisarmCrash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashArmed = false
	d.crashCountdown = 0
}

// PersistOps reports the total number of persistence-relevant operations
// (stores, flushes, fences — exactly the operations an armed crash counts)
// the device has executed since creation. ArmCrash(n) fires on the
// (n+1)th subsequent such operation, so a workload spanning operations
// [a, b) of this counter has crash boundaries ArmCrash(a+k) for
// k in [0, b-a). Exhaustive sweeps use the delta to enumerate every
// boundary instead of sampling one.
func (d *Device) PersistOps() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.persistOps
}

// CatchCrash runs fn and absorbs an injected-crash panic raised by an armed
// device, returning whether a crash fired and its details. Any other panic
// is re-raised. This is the harness entry point for crash testing:
//
//	dev.ArmCrash(n)
//	crashed, _ := pmem.CatchCrash(func() { stack.DoWork() })
//	if crashed {
//		dev.Crash(rng, 0.5)
//		stack.Recover()
//	}
func CatchCrash(fn func()) (crashed bool, details ErrCrash) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if e, ok := v.(ErrCrash); ok {
			crashed, details = true, e
			return
		}
		panic(v)
	}()
	fn()
	return false, ErrCrash{}
}

// SnapshotPersist returns a copy of the persistence-domain image, for
// white-box tests.
func (d *Device) SnapshotPersist() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, d.size)
	copy(out, d.persist)
	return out
}

// Wear reports endurance statistics: the total number of line writes the
// media has absorbed and the write count of the hottest line. The paper
// motivates Tinca partly by NVM write endurance (PCM: 10^6–10^8 writes
// per cell): halving media writes roughly doubles device lifetime.
func (d *Device) Wear() (total int64, maxLine uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.wear {
		total += int64(w)
		if w > maxLine {
			maxLine = w
		}
	}
	return total, maxLine
}

// WearRange returns the maximum per-line media-write count within
// [off, off+n), for endurance accounting of a specific region (e.g. the
// Head/Tail pointer lines).
func (d *Device) WearRange(off, n int) (maxLine uint32) {
	d.check(off, n)
	d.mu.Lock()
	defer d.mu.Unlock()
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		if d.wear[l] > maxLine {
			maxLine = d.wear[l]
		}
	}
	return maxLine
}

// WallTime is a convenience conversion used by drivers when reporting
// simulated durations.
func WallTime(ns int64) time.Duration { return time.Duration(ns) }
