// Command tincafs is an interactive shell over a file system mounted on a
// Tinca (or Classic) stack — handy for poking at the system and for
// demonstrating crash recovery by hand:
//
//	$ tincafs
//	tinca> mkdir /docs
//	tinca> put /docs/a.txt hello world
//	tinca> crash          # power failure: un-flushed state is lost
//	tinca> recover        # Tinca's Section 4.5 recovery
//	tinca> cat /docs/a.txt
//	hello world
//	tinca> stats
//
// Commands: mkdir ls put cat append rm mv stat truncate sync crash recover
// fsck stats lat time help quit. Start with -observe (or -metrics-addr) to
// record latency histograms; 'lat' prints the percentiles.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tinca"
	"tinca/internal/sim"
)

func main() {
	kindFlag := flag.String("kind", "tinca", "stack kind: tinca | classic | nojournal")
	nvmMB := flag.Int("nvm", 16, "NVM cache size (MB)")
	fsMB := flag.Int("fs", 64, "file system size (MB)")
	observe := flag.Bool("observe", false, "enable latency histograms (see the 'lat' command)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/pprof on this address (implies -observe)")
	rings := flag.Int("rings", 0, "CommitRings: split the NVM log into N per-shard commit rings (tinca only; 0 = single ring)")
	l3 := flag.Bool("l3", false, "mount a simulated S3-class object store as an L3 tier behind a small L2 disk (tinca only)")
	l3L2MB := flag.Int("l3-l2-mb", 16, "L2 disk data capacity (MB) in front of the object store (with -l3)")
	l3Prefetch := flag.Int("l3-prefetch", 0, "L3 read-ahead workers: 0 = default 4, negative = disabled (with -l3)")
	flag.Parse()

	var kind = tinca.KindTinca
	switch *kindFlag {
	case "tinca":
	case "classic":
		kind = tinca.KindClassic
	case "nojournal":
		kind = tinca.KindClassicNoJournal
	default:
		fmt.Fprintln(os.Stderr, "tincafs: unknown -kind", *kindFlag)
		os.Exit(2)
	}

	cfg := tinca.StackConfig{
		Kind:     kind,
		NVMBytes: *nvmMB << 20,
		FSBlocks: uint64(*fsMB) << 20 / tinca.BlockSize,
		Options:  tinca.CacheOptions{Observe: *observe || *metricsAddr != "", CommitRings: *rings},
	}
	if *l3 {
		cfg.L3 = true
		cfg.L3L2Blocks = uint64(*l3L2MB) << 20 / tinca.BlockSize
		cfg.L3Prefetch = *l3Prefetch
	}
	s, err := tinca.NewStack(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tincafs:", err)
		os.Exit(1)
	}
	fmt.Printf("tincafs: %s stack, %dMB NVM cache, %dMB file system\n", *kindFlag, *nvmMB, *fsMB)
	if *l3 {
		fmt.Printf("tiering: %s object store behind a %dMB L2 disk, %d prefetch workers\n",
			s.Cfg.L3Profile.Name, *l3L2MB, s.Cfg.L3Prefetch)
	}
	if *metricsAddr != "" {
		addr, err := s.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tincafs:", err)
			os.Exit(1)
		}
		fmt.Printf("serving http://%s/metrics and /debug/pprof/\n", addr)
	}

	rng := sim.NewRand(1)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("tinca> ")
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		if err := run(s, cmd, args, rng); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func run(s *tinca.Stack, cmd string, args []string, rng interface{ Int63n(int64) int64 }) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s: need %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "help":
		fmt.Println("mkdir ls put cat append rm mv stat truncate sync crash recover fsck stats lat time help quit")
	case "quit", "exit":
		return errQuit
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return s.FS.MkdirAll(args[0])
	case "ls":
		dir := "/"
		if len(args) > 0 {
			dir = args[0]
		}
		names, err := s.FS.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, n := range names {
			info, err := s.FS.Stat(strings.TrimSuffix(dir, "/") + "/" + n)
			if err != nil {
				return err
			}
			kind := "f"
			if info.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %10d  %s\n", kind, info.Size, n)
		}
	case "put":
		if err := need(2); err != nil {
			return err
		}
		return s.FS.WriteFile(args[0], []byte(strings.Join(args[1:], " ")))
	case "append":
		if err := need(2); err != nil {
			return err
		}
		return s.FS.Append(args[0], []byte(strings.Join(args[1:], " ")+"\n"))
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		data, err := s.FS.ReadFile(args[0])
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return s.FS.Remove(args[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return s.FS.Rename(args[0], args[1])
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		info, err := s.FS.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("size=%d dir=%v nlink=%d mtime=%dns\n", info.Size, info.IsDir, info.Nlink, info.Mtime)
	case "truncate":
		if err := need(2); err != nil {
			return err
		}
		n, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return s.FS.Truncate(args[0], n)
	case "sync":
		return s.FS.Sync()
	case "crash":
		s.Crash(sim.NewRand(rng.Int63n(1<<30)), 0.5)
		fmt.Println("power failure injected; run 'recover' to bring the stack back")
	case "recover":
		if err := s.Remount(); err != nil {
			return err
		}
		fmt.Println("recovered")
	case "fsck":
		if s.FS == nil {
			return fmt.Errorf("not mounted (crashed? run 'recover')")
		}
		if err := s.FS.Check(); err != nil {
			return err
		}
		if s.TCache != nil {
			if err := s.TCache.CheckInvariants(); err != nil {
				return err
			}
		}
		fmt.Println("clean")
	case "stats":
		st := s.Stats()
		fmt.Printf("device: %d clflush, %d sfence, NVM %d/%d B w/r, disk %d/%d blks w/r\n",
			st.Device.CLFlushes, st.Device.SFences,
			st.Device.NVMBytesWritten, st.Device.NVMBytesRead,
			st.Device.DiskBlocksWrite, st.Device.DiskBlocksRead)
		if s.TCache != nil {
			c := st.Cache
			fmt.Printf("cache:  %d/%d read hit/miss (%d fast), %d/%d write hit/miss\n",
				c.ReadHits, c.ReadMisses, c.ReadHitFast, c.WriteHits, c.WriteMisses)
			fmt.Printf("        %d commits in %d seals, %d evictions (%d dirty), %d index grows\n",
				c.Commits, c.GroupSeals, c.Evictions, c.DirtyEvictions, c.IndexGrows)
			fmt.Printf("        %d bg / %d direct evictions, %d fill races, %d alloc refills\n",
				c.BgEvictions, c.DirectEvictions, c.FillRaces, c.AllocRefills)
			fmt.Printf("        read fast path: %d fast, %d slow, %d seqlock retries\n",
				c.ReadHitFast, c.ReadHitSlow, c.SeqlockRetries)
			fmt.Printf("views:  %d zero-copy, %d copied, %d deferred frees, %d open\n",
				c.ZeroCopyViews, c.CopiedViews, c.ViewDeferredFrees, c.OpenViews)
			if len(c.RingSeals) > 0 {
				fmt.Printf("rings:  %d commit rings, %d cross-shard txns, %d seal-lock conflicts\n",
					len(c.RingSeals), c.CrossShardTxns, c.RingSealConflicts)
				fmt.Printf("        seals/ring:")
				for _, n := range c.RingSeals {
					fmt.Printf(" %d", n)
				}
				fmt.Printf("\n        queued/ring:")
				for _, n := range c.RingQueueDepth {
					fmt.Printf(" %d", n)
				}
				fmt.Println()
			}
		}
		if s.Tier != nil {
			ts, ob := st.Tier, st.Obj
			fmt.Printf("tier:   %d L2 hits, %d staged hits, %d fetches (%d prefetched, %d absorbed misses)\n",
				ts.L2Hits, ts.StagingHits, ts.L3Fetches, ts.Prefetches, ts.PrefetchHits)
			fmt.Printf("        %d uploads (%d blocks), %d/%d slots dirty, %d free, %d L2 evicts, %d admits (%d dropped), %d stalls\n",
				ts.Uploads, ts.UploadBlocks, ts.DirtySlots, ts.DataSlots, ts.FreeSlots,
				ts.L2Evicts, ts.Admits, ts.AdmitDrops, ts.Backpressure)
			fmt.Printf("store:  %d objects (%.1f MB), %d PUTs, %d GETs, %.1f/%.1f MB up/down, $%.4f\n",
				ob.Objects, float64(ob.BytesStored)/(1<<20), ob.Puts, ob.Gets,
				float64(ob.BytesUp)/(1<<20), float64(ob.BytesDown)/(1<<20), ob.CostDollars())
		}
		fmt.Printf("fs:     %d read ops, %d write ops, %d group commits, %d free blocks\n",
			st.FS.ReadOps, st.FS.WriteOps, st.FS.GroupCommits, st.FS.FreeBlocks)
	case "lat":
		if !s.Cfg.Observe {
			return fmt.Errorf("latency histograms are off; restart with -observe")
		}
		st := s.Stats()
		if st.FS.ReadLatency.Count > 0 {
			fmt.Printf("%-18s %s\n", "fs read op", st.FS.ReadLatency)
		}
		if st.FS.WriteLatency.Count > 0 {
			fmt.Printf("%-18s %s\n", "fs write op", st.FS.WriteLatency)
		}
		if st.Cache.CommitLatency.Count > 0 {
			fmt.Printf("%-18s %s\n", "cache commit", st.Cache.CommitLatency)
		}
		for _, p := range st.Cache.CommitPhases {
			fmt.Printf("  %-16s %s\n", p.Phase, p.LatencySummary)
		}
		if c := st.Cache; c.ReadHits > 0 {
			fmt.Printf("%-18s %d fast / %d slow hits, %d seqlock retries\n",
				"read fast path", c.ReadHitFast, c.ReadHitSlow, c.SeqlockRetries)
		}
	case "time":
		fmt.Println("simulated:", s.Clock.Now())
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}
