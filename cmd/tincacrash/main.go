// Command tincacrash is the recoverability torture tool of the paper's
// Section 5.1 ("we set two scenarios of system failure ... each time Tinca
// can recover and crash consistency of the system is never impaired").
//
// Each trial builds a full Tinca stack, runs a random write-heavy
// workload, injects a power failure at a random operation boundary (the
// crash image keeps a random subset of un-flushed CPU cache lines, the
// adversarial model), remounts — running Tinca's recovery — and verifies:
//
//   - Tinca's structural invariants (ring quiescent, no log-role entries,
//     exclusive NVM block ownership),
//   - file-system consistency (full fsck walk),
//   - durability of data committed before the crash window.
//
// Exit status is non-zero if any trial finds an inconsistency.
//
// Usage:
//
//	tincacrash -trials 200 -seed 7 -evictp 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"tinca"
	"tinca/internal/sim"
)

func main() {
	trials := flag.Int("trials", 100, "number of crash/recover trials")
	seed := flag.Int64("seed", 1, "random seed")
	evictP := flag.Float64("evictp", -1, "probability an un-flushed line persists anyway (-1 = random per trial)")
	verbose := flag.Bool("v", false, "log each trial")
	flag.Parse()

	rng := sim.NewRand(*seed)
	failures := 0
	for trial := 0; trial < *trials; trial++ {
		if err := runTrial(rng, *evictP); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "trial %d: INCONSISTENCY: %v\n", trial, err)
		} else if *verbose {
			fmt.Printf("trial %d: ok\n", trial)
		}
	}
	fmt.Printf("tincacrash: %d trials, %d failures\n", *trials, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func runTrial(rng interface {
	Intn(int) int
	Float64() float64
	Int63n(int64) int64
}, evictP float64) error {
	s, err := tinca.NewStack(tinca.StackConfig{
		Kind:     tinca.KindTinca,
		NVMBytes: 4 << 20,
		FSBlocks: 4096,
	})
	if err != nil {
		return err
	}

	// Data committed before the crash window must survive it.
	marker := []byte("committed-before-crash")
	if err := s.FS.WriteFile("/marker", marker); err != nil {
		return err
	}

	s.Mem.ArmCrash(rng.Int63n(60000))
	crashed, _ := tinca.CatchCrash(func() {
		_, _ = tinca.RunFilebench(s.FS, tinca.FilebenchConfig{
			Profile: tinca.Varmail, Files: 32, FileBytes: 16 << 10,
			Ops: 500, Seed: rng.Int63n(1 << 30),
		})
	})
	if !crashed {
		s.Mem.DisarmCrash()
	}

	p := evictP
	if p < 0 {
		p = rng.Float64()
	}
	s.Crash(sim.NewRand(rng.Int63n(1<<30)), p)

	if err := s.Remount(); err != nil {
		return fmt.Errorf("remount: %w", err)
	}
	if err := s.TCache.CheckInvariants(); err != nil {
		return fmt.Errorf("cache invariants: %w", err)
	}
	if err := s.FS.Check(); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	got, err := s.FS.ReadFile("/marker")
	if err != nil {
		return fmt.Errorf("durability: marker lost: %w", err)
	}
	if string(got) != string(marker) {
		return fmt.Errorf("durability: marker corrupted: %q", got)
	}
	// The recovered system must remain fully usable.
	if err := s.FS.WriteFile("/post-recovery", []byte("alive")); err != nil {
		return fmt.Errorf("post-recovery write: %w", err)
	}
	return nil
}
