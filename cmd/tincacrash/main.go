// Command tincacrash is the recoverability torture tool of the paper's
// Section 5.1 ("we set two scenarios of system failure ... each time Tinca
// can recover and crash consistency of the system is never impaired").
//
// Three modes:
//
// Random trials (default): each trial runs a random op trace against a
// fresh stack, injects a power failure at a random NVM-operation boundary
// (the crash image keeps a random subset of un-flushed cache lines, the
// adversarial model), remounts, and verifies structural invariants, a
// full fsck walk, and the durability/atomicity oracle of DESIGN.md §5.
//
//	tincacrash -trials 200 -seed 7 -evictp 0.5
//
// Exhaustive sweep (-sweep): counts every persist op the trace spans and
// crashes one deterministic trial at *each* boundary, across an eviction
// probability grid — no boundary left unsampled. With -group-blocks > 0
// the sweep runs concurrent committers under group commit and applies
// the batch prefix-atomicity oracle instead. On failure, the first
// failing trial is shrunk to a minimal reproducer line.
//
//	tincacrash -sweep -kind tinca -ops 200
//	tincacrash -sweep -kind tinca -ops 200 -checkpoint   # checkpoint writer at every commit point
//	tincacrash -sweep -kind tinca -ops 200 -rings 16     # multi-ring commit layout
//	tincacrash -sweep -kind classic -ops 100 -stride 3
//	tincacrash -sweep -group-blocks 4 -fs-workers 4 -committers 2 -max-boundaries 200
//	tincacrash -sweep -fault skip-data-flush -evictps 0   # harness self-test: must fail
//
// Replay (-replay): re-runs the trial a reproducer line describes.
//
//	tincacrash -replay 'kind=tinca boundary=137 evictp=0 fault=none seed=5 trace=c:/f0001|...'
//
// Blackbox (-blackbox): one deterministic Tinca trial with the NVM flight
// recorder on; crashes at -boundary (default: midway), prints the
// forensic report decoded from the crash image (last sealed generation,
// txns in flight, last-N event timeline), then remounts and prints the
// §4.5 recovery breakdown.
//
//	tincacrash -blackbox -seed 7 -ops 200 -evictp 0.5
//	tincacrash -blackbox -boundary 5000
//
// Serial sweeps additionally accept -blackbox-out DIR: on failure, a
// blackbox report for each failing trial (up to 5) is written into DIR
// for offline forensics (CI uploads them as artifacts).
//
// Exit status is non-zero if any trial finds an inconsistency.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tinca/internal/crash"
	"tinca/internal/sim"
)

func main() {
	var (
		sweep    = flag.Bool("sweep", false, "exhaustive boundary sweep instead of random trials")
		replay   = flag.String("replay", "", "replay a failure reproducer line and exit")
		blackbox = flag.Bool("blackbox", false, "crash one flight-recorded trial and print the forensic report")
		boundary = flag.Int64("boundary", -1, "persist-op crash boundary for -blackbox (-1 = midway)")
		bbOut    = flag.String("blackbox-out", "", "directory for blackbox reports of sweep failures (serial sweeps)")

		kindF   = flag.String("kind", "tinca", "stack kind: tinca, classic, classic-nojournal")
		seed    = flag.Int64("seed", 1, "random seed")
		ops     = flag.Int("ops", 200, "ops per trace (per worker in group mode)")
		evictPs = flag.String("evictps", "0,0.5,1", "comma-separated eviction probabilities (sweep mode)")
		stride  = flag.Int64("stride", 1, "sweep every Nth boundary")
		maxB    = flag.Int("max-boundaries", 0, "cap on boundaries swept, evenly subsampled (0 = exhaustive)")
		workers = flag.Int("workers", 0, "parallel trial runners (0 = GOMAXPROCS)")
		faultF  = flag.String("fault", "none", "injected protocol fault: none, skip-data-flush (harness self-test)")
		ckpt    = flag.Bool("checkpoint", false, "run the checkpoint writer at every commit point (sweep mode, tinca only)")
		rings   = flag.Int("rings", 0, "CommitRings: split the NVM log into N per-shard rings (sweep mode, tinca only; 0 = single ring)")
		l3      = flag.Bool("l3", false, "run every trial on the tiered stack: L3 object store behind a small L2 disk (sweep mode, tinca only)")

		groupBlocks = flag.Int("group-blocks", 0, "FS group-commit threshold; > 0 selects the group oracle")
		fsWorkers   = flag.Int("fs-workers", 4, "concurrent FS op streams (group mode)")
		committers  = flag.Int("committers", 2, "raw block-txn committers (group mode, tinca only)")
		minimize    = flag.Bool("minimize", true, "shrink the first failure to a minimal reproducer (serial sweeps)")

		trials = flag.Int("trials", 100, "random crash/recover trials (default mode)")
		evictP = flag.Float64("evictp", -1, "eviction probability for random trials (-1 = random per trial)")

		verbose = flag.Bool("v", false, "log each trial / every progress tick")
	)
	flag.Parse()

	switch {
	case *replay != "":
		os.Exit(runReplay(*replay))
	case *blackbox:
		p := *evictP
		if p < 0 {
			p = 0.5
		}
		os.Exit(runBlackbox(*seed, *ops, *boundary, p))
	case *sweep:
		os.Exit(runSweep(sweepArgs{
			kind: *kindF, seed: *seed, ops: *ops, evictPs: *evictPs,
			stride: *stride, maxB: *maxB, workers: *workers, fault: *faultF, ckpt: *ckpt, rings: *rings, l3: *l3,
			groupBlocks: *groupBlocks, fsWorkers: *fsWorkers, committers: *committers,
			minimize: *minimize, verbose: *verbose, bbOut: *bbOut,
		}))
	default:
		os.Exit(runRandomTrials(*kindF, *trials, *seed, *ops, *evictP, *verbose))
	}
}

func fatalf(format string, args ...interface{}) int {
	fmt.Fprintf(os.Stderr, "tincacrash: "+format+"\n", args...)
	return 2
}

func runReplay(line string) int {
	spec, err := crash.ParseReplaySpec(line)
	if err != nil {
		return fatalf("%v", err)
	}
	res, err := crash.Replay(spec)
	if err != nil {
		fmt.Printf("tincacrash: replay: crashed=%v acked=%d inflight=%q\n", res.Crashed, res.OpsAcked, res.Inflight)
		fmt.Printf("tincacrash: INCONSISTENCY reproduced: %v\n", err)
		return 1
	}
	fmt.Printf("tincacrash: replay consistent (crashed=%v acked=%d)\n", res.Crashed, res.OpsAcked)
	return 0
}

type sweepArgs struct {
	kind, evictPs, fault               string
	seed, stride                       int64
	ops, maxB, workers, rings          int
	groupBlocks, fsWorkers, committers int
	minimize, verbose, ckpt, l3        bool
	bbOut                              string
}

// runBlackbox crashes one flight-recorded trial and prints the forensic
// report plus the recovery breakdown.
func runBlackbox(seed int64, ops int, boundary int64, evictP float64) int {
	res, err := crash.Blackbox(seed, ops, boundary, evictP)
	if err != nil {
		return fatalf("%v", err)
	}
	if res.BoundarySpace > 0 {
		fmt.Printf("tincacrash: blackbox: workload spans %d persist ops; crash armed at boundary %d (evictp=%v)\n",
			res.BoundarySpace, res.Boundary, evictP)
	} else {
		fmt.Printf("tincacrash: blackbox: crash armed at boundary %d (evictp=%v)\n", res.Boundary, evictP)
	}
	if !res.Crashed {
		fmt.Println("tincacrash: blackbox: boundary past the workload; no crash fired (clean image)")
	}
	fmt.Print(res.Report)
	if rs := res.Recovery; rs.Ran {
		fmt.Printf("recovery: total %dns = scan %dns + redo %dns + undo %dns + rebuild %dns\n",
			rs.TotalNS, rs.ScanNS, rs.RedoNS, rs.UndoNS, rs.RebuildNS)
		fmt.Printf("recovery: ring span %d (%s), %d entries scanned, %d redone, %d undone, %d stray revoked, %d resident\n",
			rs.RingSpan, map[bool]string{true: "redo", false: "undo"}[rs.Redo],
			rs.EntriesScanned, rs.EntriesRedone, rs.EntriesUndone, rs.StrayRevoked, rs.Resident)
	}
	if res.Err != nil {
		fmt.Printf("tincacrash: blackbox: INCONSISTENCY: %v\n", res.Err)
		return 1
	}
	return 0
}

// writeFailureBlackboxes re-runs up to five failing serial-sweep trials
// with the forensic path and writes each report into dir (best effort —
// CI uploads the directory as an artifact on failure).
func writeFailureBlackboxes(dir string, a sweepArgs, failures []crash.Failure) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tincacrash: blackbox-out: %v\n", err)
		return
	}
	n := len(failures)
	if n > 5 {
		n = 5
	}
	for _, f := range failures[:n] {
		res, err := crash.Blackbox(a.seed, a.ops, f.Boundary, f.EvictP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tincacrash: blackbox-out boundary %d: %v\n", f.Boundary, err)
			continue
		}
		name := filepath.Join(dir, fmt.Sprintf("blackbox-b%d-p%v.txt", f.Boundary, f.EvictP))
		body := fmt.Sprintf("failure: boundary=%d evictp=%v\noracle: %v\n\n%s", f.Boundary, f.EvictP, f.Err, res.Report)
		if res.Err != nil {
			body += fmt.Sprintf("\nre-run verification: %v\n", res.Err)
		}
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tincacrash: blackbox-out: %v\n", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "tincacrash: blackbox report written to %s\n", name)
	}
}

func runSweep(a sweepArgs) int {
	kind, err := crash.ParseKind(a.kind)
	if err != nil {
		return fatalf("%v", err)
	}
	fault, err := crash.ParseFault(a.fault)
	if err != nil {
		return fatalf("%v", err)
	}
	var ps []float64
	for _, f := range strings.Split(a.evictPs, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || p < 0 || p > 1 {
			return fatalf("bad -evictps entry %q", f)
		}
		ps = append(ps, p)
	}
	cfg := crash.SweepConfig{
		Kind:          kind,
		Seed:          a.seed,
		Ops:           a.ops,
		EvictPs:       ps,
		Stride:        a.stride,
		MaxBoundaries: a.maxB,
		Workers:       a.workers,
		Fault:         fault,
		Checkpoint:    a.ckpt,
		Rings:         a.rings,
		L3:            a.l3,
	}
	if a.groupBlocks > 0 {
		cfg.Group = crash.GroupConfig{Blocks: a.groupBlocks, FSWorkers: a.fsWorkers, RawCommitters: a.committers}
	}
	lastPct := -1
	cfg.Progress = func(done, total, failures int) {
		pct := done * 100 / total
		if pct != lastPct && (a.verbose || pct%5 == 0 || done == total) {
			lastPct = pct
			fmt.Fprintf(os.Stderr, "\rtincacrash: sweep %d/%d trials (%d%%), %d failures", done, total, pct, failures)
		}
	}
	res, err := crash.Sweep(cfg)
	fmt.Fprintln(os.Stderr)
	if err != nil {
		return fatalf("%v", err)
	}

	mode := "serial"
	if a.groupBlocks > 0 {
		mode = fmt.Sprintf("group(blocks=%d,fs=%d,raw=%d)", a.groupBlocks, a.fsWorkers, a.committers)
	}
	if a.ckpt {
		mode += "+ckpt"
	}
	if a.rings > 1 {
		mode += fmt.Sprintf("+rings=%d", a.rings)
	}
	if a.l3 {
		mode += "+l3"
	}
	fmt.Printf("tincacrash: %s %s sweep: %d boundaries of %d-op space x %d evictPs = %d trials, %d crashed, %d failures\n",
		a.kind, mode, res.Boundaries, res.BoundarySpace, len(ps), res.Runs, res.Crashes, len(res.Failures))
	if len(res.Failures) == 0 {
		return 0
	}

	show := res.Failures
	if len(show) > 5 {
		show = show[:5]
	}
	for _, f := range show {
		fmt.Printf("  FAIL boundary=%d evictp=%v: %v\n", f.Boundary, f.EvictP, f.Err)
	}
	if len(res.Failures) > len(show) {
		fmt.Printf("  ... and %d more\n", len(res.Failures)-len(show))
	}
	if a.bbOut != "" && a.groupBlocks == 0 {
		writeFailureBlackboxes(a.bbOut, a, res.Failures)
	}
	switch {
	case a.groupBlocks > 0:
		fmt.Printf("group failures are scheduling-dependent; re-run: tincacrash -sweep -kind %s -seed %d -ops %d -group-blocks %d -fs-workers %d -committers %d\n",
			a.kind, a.seed, a.ops, a.groupBlocks, a.fsWorkers, a.committers)
	case a.minimize:
		min, err := crash.Minimize(cfg, res.Failures[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "tincacrash: minimize: %v\n", err)
			fmt.Printf("replay: tincacrash -replay '%s'\n", cfg.ReplayLine(res.Failures[0]))
		} else {
			fmt.Printf("minimal reproducer: %d ops at boundary %d (%d shrink trials): %v\n",
				len(min.Trace), min.Boundary, min.Trials, min.Err)
			fmt.Printf("replay: tincacrash -replay '%s'\n", min.Spec)
		}
	default:
		fmt.Printf("replay: tincacrash -replay '%s'\n", cfg.ReplayLine(res.Failures[0]))
	}
	return 1
}

func runRandomTrials(kindF string, trials int, seed int64, ops int, evictP float64, verbose bool) int {
	kind, err := crash.ParseKind(kindF)
	if err != nil {
		return fatalf("%v", err)
	}
	rng := sim.NewRand(seed)
	failures, crashes := 0, 0
	for trial := 0; trial < trials; trial++ {
		p := evictP
		if p < 0 {
			p = rng.Float64()
		}
		tseed := rng.Int63()
		res, err := crash.Trial(kind, tseed, ops, p)
		if res.Crashed {
			crashes++
		}
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "trial %d (seed=%d evictp=%v acked=%d inflight=%q): INCONSISTENCY: %v\n",
				trial, tseed, p, res.OpsAcked, res.Inflight, err)
		} else if verbose {
			fmt.Printf("trial %d: ok (crashed=%v acked=%d)\n", trial, res.Crashed, res.OpsAcked)
		}
	}
	fmt.Printf("tincacrash: %d trials, %d crashed, %d failures\n", trials, crashes, failures)
	if failures > 0 {
		return 1
	}
	return 0
}
