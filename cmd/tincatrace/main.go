// Command tincatrace replays a block trace against a chosen storage stack
// and reports the metrics the paper's evaluation uses, so real-world
// workloads (e.g. converted MSR Cambridge traces) can be compared on
// Tinca vs Classic:
//
//	tincatrace -kind tinca  trace.csv
//	tincatrace -kind classic trace.csv
//	tincatrace -synth 10000 -writepct 70     # no file: synthesize a trace
//
// Trace format (one I/O per line, '#' comments allowed):
//
//	W,<offset>,<bytes>
//	R,<offset>,<bytes>
package main

import (
	"flag"
	"fmt"
	"os"

	"tinca"
	"tinca/internal/workload"
)

func main() {
	kindFlag := flag.String("kind", "tinca", "stack kind: tinca | classic | nojournal")
	nvmMB := flag.Int("nvm", 16, "NVM cache size (MB)")
	fsMB := flag.Int("fs", 64, "file system size (MB)")
	synth := flag.Int("synth", 0, "synthesize this many records instead of reading a file")
	writePct := flag.Int("writepct", 50, "write percentage for -synth")
	seed := flag.Int64("seed", 42, "seed for -synth")
	observe := flag.Bool("observe", false, "report per-op latency percentiles (simulated time)")
	traceOut := flag.String("trace-out", "", "write commit spans as Chrome trace_event JSON to this file (implies -observe)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address during the replay (implies -observe)")
	flag.Parse()

	var recs []workload.TraceRecord
	switch {
	case *synth > 0:
		recs = workload.SynthesizeTrace(*seed, *synth, uint64(*fsMB)<<20/2, *writePct, 16<<10)
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		recs, err = workload.ParseTrace(f)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tincatrace [-kind tinca|classic] <trace.csv> | -synth N")
		os.Exit(2)
	}

	kind := tinca.KindTinca
	switch *kindFlag {
	case "tinca":
	case "classic":
		kind = tinca.KindClassic
	case "nojournal":
		kind = tinca.KindClassicNoJournal
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kindFlag))
	}

	cfg := tinca.StackConfig{
		Kind:              kind,
		NVMBytes:          *nvmMB << 20,
		FSBlocks:          uint64(*fsMB) << 20 / tinca.BlockSize,
		GroupCommitBlocks: 32,
		Options:           tinca.CacheOptions{Observe: *observe || *metricsAddr != ""},
	}
	if *traceOut != "" {
		cfg.TraceEvents = 1 << 16
		// The flight-recorder timeline merges into the trace export as an
		// instant-event track (Tinca only; silent persists, so it does not
		// change the replay's simulated numbers).
		if kind == tinca.KindTinca {
			cfg.FlightRecorder = true
		}
	}
	s, err := tinca.NewStack(cfg)
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		addr, err := s.ServeMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving http://%s/metrics and /debug/pprof/\n", addr)
	}

	before := s.Stats().Device
	t0 := s.Clock.Now()
	cnt, err := workload.ReplayTrace(s.FS, "/trace.dat", recs)
	if err != nil {
		fatal(err)
	}
	d := s.Stats().Device.Sub(before)
	wall := s.Clock.Now() - t0

	ops := cnt.ReadOps + cnt.WriteOps
	perOp := func(n int64) float64 {
		if ops == 0 {
			return 0
		}
		return float64(n) / float64(ops)
	}
	fmt.Printf("replayed %d I/Os (%d writes, %d reads, %.1f MB) on the %s stack\n",
		ops, cnt.WriteOps, cnt.ReadOps, float64(cnt.Bytes)/(1<<20), kind)
	fmt.Printf("simulated time:    %v\n", wall)
	fmt.Printf("throughput:        %.0f IOPS, %.1f MB/s (simulated)\n",
		float64(ops)/wall.Seconds(), float64(cnt.Bytes)/(1<<20)/wall.Seconds())
	fmt.Printf("clflush/IO:        %.1f\n", perOp(d.CLFlushes))
	fmt.Printf("disk blocks/IO:    write %.2f, read %.2f\n",
		perOp(d.DiskBlocksWrite), perOp(d.DiskBlocksRead))

	if s.Cfg.Observe {
		st := s.Stats()
		if st.FS.ReadLatency.Count > 0 {
			fmt.Printf("fs read op:        %s\n", st.FS.ReadLatency)
		}
		if st.FS.WriteLatency.Count > 0 {
			fmt.Printf("fs write op:       %s\n", st.FS.WriteLatency)
		}
		if st.Cache.CommitLatency.Count > 0 {
			fmt.Printf("cache commit:      %s\n", st.Cache.CommitLatency)
			for _, p := range st.Cache.CommitPhases {
				fmt.Printf("  %-18s %s\n", p.Phase, p.LatencySummary)
			}
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		// Flight-recorder events become thread-scoped instant markers on a
		// dedicated track (tid -1) beside the span tracks.
		var instants []tinca.TraceInstant
		if s.TCache != nil {
			if bb := s.TCache.Blackbox(); bb != nil {
				for _, r := range bb.Records {
					instants = append(instants, tinca.TraceInstant{
						Name: "flight." + r.Type.String(),
						TS:   r.TimeNS,
						TID:  -1,
						Args: map[string]uint64{"seq": r.Seq, "gen": r.Gen, "block": r.Block, "arg": r.Arg},
					})
				}
			}
		}
		if err := s.Tracer.WriteChromeTraceWith(f, instants); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans + %d flight events to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			len(s.Tracer.Spans()), len(instants), *traceOut)
	}

	if err := s.FS.Check(); err != nil {
		fatal(fmt.Errorf("post-replay fsck: %w", err))
	}
	fmt.Println("fsck: clean")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tincatrace:", err)
	os.Exit(1)
}
