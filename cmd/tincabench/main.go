// Command tincabench regenerates the paper's tables and figures.
//
// Usage:
//
//	tincabench -fig 7            # one experiment (see -list)
//	tincabench -all              # every experiment, in paper order
//	tincabench -fig 8 -scale 0.2 # quicker, smaller run
//
// Numbers come from the simulated clock and the shared metrics recorder;
// absolute values are not comparable to the paper's testbed, the *shape*
// (who wins, by what factor) is. See EXPERIMENTS.md for the comparison.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"tinca/internal/exp"
	"tinca/internal/metrics"
)

func main() {
	fig := flag.String("fig", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 42, "random seed")
	format := flag.String("format", "table", "output format: table | csv")
	observe := flag.Bool("observe", false, "enable latency histograms in every stack (DESIGN.md §9)")
	traceOut := flag.String("trace-out", "", "write commit spans as Chrome trace_event JSON to this file (implies -observe)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/pprof on this address while running (implies -observe)")
	flag.Parse()
	outputCSV = *format == "csv"

	var tracer *metrics.Tracer
	if *traceOut != "" {
		tracer = metrics.NewTracer(metrics.DefaultTraceEvents)
		defer dumpTrace(tracer, *traceOut)
	}
	exp.Observability.Observe = *observe || tracer != nil || *metricsAddr != ""
	exp.Observability.Tracer = tracer
	if *metricsAddr != "" {
		exp.Observability.Publish = true
		serveMetrics(*metricsAddr)
	}

	switch {
	case *list:
		fmt.Println("experiments:", strings.Join(exp.Names(), " "))
		return
	case *all:
		for _, name := range exp.Names() {
			runOne(name, exp.Options{Scale: *scale, Seed: *seed})
		}
		return
	case *fig != "":
		runOne(*fig, exp.Options{Scale: *scale, Seed: *seed})
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

var outputCSV bool

// serveMetrics exposes the process-wide published recorders (each stack an
// experiment brings up publishes its own) plus net/http/pprof. The server
// lives for the whole process; experiments run on the main goroutine.
func serveMetrics(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: -metrics-addr: %v\n", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "tincabench: serving http://%s/metrics and /debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "tincabench: metrics server: %v\n", err)
		}
	}()
}

// dumpTrace writes the span ring for chrome://tracing / Perfetto.
func dumpTrace(tr *metrics.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: -trace-out: %v\n", err)
		return
	}
	werr := tr.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "tincabench: -trace-out: %v\n", werr)
		return
	}
	fmt.Fprintf(os.Stderr, "tincabench: wrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n", len(tr.Spans()), path)
}

func runOne(name string, o exp.Options) {
	start := time.Now()
	t, err := exp.Run(name, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: %s: %v\n", name, err)
		if t != nil {
			fmt.Print(t)
		}
		os.Exit(1)
	}
	if outputCSV {
		fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		return
	}
	fmt.Print(t)
	fmt.Printf("(%s in %.1fs wall)\n\n", name, time.Since(start).Seconds())
}
