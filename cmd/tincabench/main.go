// Command tincabench regenerates the paper's tables and figures.
//
// Usage:
//
//	tincabench -fig 7            # one experiment (see -list)
//	tincabench -all              # every experiment, in paper order
//	tincabench -fig 8 -scale 0.2 # quicker, smaller run
//
// Numbers come from the simulated clock and the shared metrics recorder;
// absolute values are not comparable to the paper's testbed, the *shape*
// (who wins, by what factor) is. See EXPERIMENTS.md for the comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"tinca/internal/exp"
	"tinca/internal/metrics"
)

func main() {
	fig := flag.String("fig", "", "experiment(s) to run, comma-separated (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 42, "random seed")
	format := flag.String("format", "table", "output format: table | csv")
	observe := flag.Bool("observe", false, "enable latency histograms in every stack (DESIGN.md §9)")
	traceOut := flag.String("trace-out", "", "write commit spans as Chrome trace_event JSON to this file (implies -observe)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/pprof on this address while running (implies -observe)")
	benchJSON := flag.String("bench-json", "", "write each experiment's machine-readable metrics as JSON to this file (e.g. BENCH_core.json)")
	maxDirectEvict := flag.Float64("max-direct-evict-pct", -1, "fail (exit 1) if any experiment reports a direct_evict_pct above this percentage; <0 disables")
	minFastHit := flag.Float64("min-fast-hit-ratio", -1, "fail (exit 1) if any experiment reports a fast_hit_ratio below this fraction; <0 disables")
	maxAllocs := flag.Float64("max-allocs-per-op", -1, "fail (exit 1) if any experiment reports an *_allocs_per_op metric above this value; <0 disables")
	maxRecoveryGrowth := flag.Float64("max-recovery-growth", -1, "fail (exit 1) if recoveryscale reports recovery_scale_on_growth above this ratio (checkpointed restart must stay flat); <0 disables")
	minWriterSpeedup := flag.Float64("min-writer-speedup", -1, "fail (exit 1) if writerscaling reports writer_speedup_8 below this factor (multi-ring commit at 8 disjoint committers); <0 disables")
	minPrefetchSpeedup := flag.Float64("min-prefetch-speedup", -1, "fail (exit 1) if coldstart reports prefetch_speedup_x below this factor (read-ahead on a cold sequential scan from the object tier); <0 disables")
	flag.Parse()
	outputCSV = *format == "csv"
	defer finish(*benchJSON, *maxDirectEvict, *minFastHit, *maxAllocs, *maxRecoveryGrowth, *minWriterSpeedup, *minPrefetchSpeedup)

	var tracer *metrics.Tracer
	if *traceOut != "" {
		tracer = metrics.NewTracer(metrics.DefaultTraceEvents)
		defer dumpTrace(tracer, *traceOut)
	}
	exp.Observability.Observe = *observe || tracer != nil || *metricsAddr != ""
	exp.Observability.Tracer = tracer
	if *metricsAddr != "" {
		exp.Observability.Publish = true
		serveMetrics(*metricsAddr)
	}

	switch {
	case *list:
		fmt.Println("experiments:", strings.Join(exp.Names(), " "))
		return
	case *all:
		for _, name := range exp.Names() {
			runOne(name, exp.Options{Scale: *scale, Seed: *seed})
		}
		return
	case *fig != "":
		for _, name := range strings.Split(*fig, ",") {
			if name = strings.TrimSpace(name); name != "" {
				runOne(name, exp.Options{Scale: *scale, Seed: *seed})
			}
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

var outputCSV bool

// benchMetrics accumulates each experiment's Table.Metrics for the
// -bench-json export and the -max-direct-evict-pct gate.
var benchMetrics = make(map[string]map[string]float64)

// finish writes the accumulated metrics and enforces the direct-eviction,
// fast-hit, allocation, recovery-flatness, writer-scaling and tiering
// prefetch gates. Runs deferred from main so both -fig and -all paths
// share it.
func finish(benchJSON string, maxDirectEvict, minFastHit, maxAllocs, maxRecoveryGrowth, minWriterSpeedup, minPrefetchSpeedup float64) {
	if benchJSON != "" {
		data, err := json.MarshalIndent(benchMetrics, "", "  ")
		if err == nil {
			err = os.WriteFile(benchJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tincabench: -bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tincabench: wrote metrics for %d experiments to %s\n", len(benchMetrics), benchJSON)
	}
	if maxDirectEvict >= 0 {
		for name, m := range benchMetrics {
			if pct, ok := m["direct_evict_pct"]; ok && pct > maxDirectEvict {
				fmt.Fprintf(os.Stderr,
					"tincabench: %s: direct evictions were %.2f%% of evictions (max allowed %.2f%%) — the watermark evictor fell behind\n",
					name, pct, maxDirectEvict)
				os.Exit(1)
			}
		}
	}
	if minFastHit >= 0 {
		for name, m := range benchMetrics {
			if r, ok := m["fast_hit_ratio"]; ok && r < minFastHit {
				fmt.Fprintf(os.Stderr,
					"tincabench: %s: fast-hit ratio %.3f below the required %.3f — hits are falling back to the locked path\n",
					name, r, minFastHit)
				os.Exit(1)
			}
		}
	}
	if maxRecoveryGrowth >= 0 {
		for name, m := range benchMetrics {
			if g, ok := m["recovery_scale_on_growth"]; ok && g > maxRecoveryGrowth {
				off := m["recovery_scale_off_growth"]
				fmt.Fprintf(os.Stderr,
					"tincabench: %s: checkpointed restart grew %.2fx from the smallest to the largest NVM size (max allowed %.2fx; full-scan baseline grew %.2fx) — recovery is scanning instead of loading the frame\n",
					name, g, maxRecoveryGrowth, off)
				os.Exit(1)
			}
		}
	}
	if minWriterSpeedup >= 0 {
		for name, m := range benchMetrics {
			if s, ok := m["writer_speedup_8"]; ok && s < minWriterSpeedup {
				fmt.Fprintf(os.Stderr,
					"tincabench: %s: multi-ring speedup at 8 disjoint committers was %.2fx (min required %.2fx) — per-shard rings are not overlapping seals\n",
					name, s, minWriterSpeedup)
				os.Exit(1)
			}
		}
	}
	if minPrefetchSpeedup >= 0 {
		for name, m := range benchMetrics {
			if s, ok := m["prefetch_speedup_x"]; ok && s < minPrefetchSpeedup {
				fmt.Fprintf(os.Stderr,
					"tincabench: %s: cold-scan prefetch speedup was %.2fx (min required %.2fx) — read-ahead is not overlapping object fetches\n",
					name, s, minPrefetchSpeedup)
				os.Exit(1)
			}
		}
	}
	if maxAllocs >= 0 {
		for name, m := range benchMetrics {
			for key, v := range m {
				if strings.HasSuffix(key, "allocs_per_op") && v > maxAllocs {
					fmt.Fprintf(os.Stderr,
						"tincabench: %s: %s was %.3f (max allowed %.3f) — a warm read is allocating\n",
						name, key, v, maxAllocs)
					os.Exit(1)
				}
			}
		}
	}
}

// serveMetrics exposes the process-wide published recorders (each stack an
// experiment brings up publishes its own) plus net/http/pprof. The server
// lives for the whole process; experiments run on the main goroutine.
func serveMetrics(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: -metrics-addr: %v\n", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "tincabench: serving http://%s/metrics and /debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "tincabench: metrics server: %v\n", err)
		}
	}()
}

// dumpTrace writes the span ring for chrome://tracing / Perfetto.
func dumpTrace(tr *metrics.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: -trace-out: %v\n", err)
		return
	}
	werr := tr.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "tincabench: -trace-out: %v\n", werr)
		return
	}
	fmt.Fprintf(os.Stderr, "tincabench: wrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n", len(tr.Spans()), path)
}

func runOne(name string, o exp.Options) {
	start := time.Now()
	t, err := exp.Run(name, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: %s: %v\n", name, err)
		if t != nil {
			fmt.Print(t)
		}
		os.Exit(1)
	}
	if len(t.Metrics) > 0 {
		benchMetrics[name] = t.Metrics
	}
	if outputCSV {
		fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		return
	}
	fmt.Print(t)
	fmt.Printf("(%s in %.1fs wall)\n\n", name, time.Since(start).Seconds())
}
