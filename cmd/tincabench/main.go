// Command tincabench regenerates the paper's tables and figures.
//
// Usage:
//
//	tincabench -fig 7            # one experiment (see -list)
//	tincabench -all              # every experiment, in paper order
//	tincabench -fig 8 -scale 0.2 # quicker, smaller run
//
// Numbers come from the simulated clock and the shared metrics recorder;
// absolute values are not comparable to the paper's testbed, the *shape*
// (who wins, by what factor) is. See EXPERIMENTS.md for the comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tinca/internal/exp"
)

func main() {
	fig := flag.String("fig", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 42, "random seed")
	format := flag.String("format", "table", "output format: table | csv")
	flag.Parse()
	outputCSV = *format == "csv"

	switch {
	case *list:
		fmt.Println("experiments:", strings.Join(exp.Names(), " "))
		return
	case *all:
		for _, name := range exp.Names() {
			runOne(name, exp.Options{Scale: *scale, Seed: *seed})
		}
		return
	case *fig != "":
		runOne(*fig, exp.Options{Scale: *scale, Seed: *seed})
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

var outputCSV bool

func runOne(name string, o exp.Options) {
	start := time.Now()
	t, err := exp.Run(name, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tincabench: %s: %v\n", name, err)
		if t != nil {
			fmt.Print(t)
		}
		os.Exit(1)
	}
	if outputCSV {
		fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		return
	}
	fmt.Print(t)
	fmt.Printf("(%s in %.1fs wall)\n\n", name, time.Since(start).Seconds())
}
