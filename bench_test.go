package tinca_test

// bench_test.go maps every table and figure of the paper's evaluation to a
// testing.B benchmark, as the per-experiment index in DESIGN.md requires.
// Each benchmark runs the corresponding experiment driver at a reduced
// scale and reports the headline quantity of that figure as a custom
// metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation's shape in one run. Use cmd/tincabench for full-scale runs
// and the complete tables.

import (
	"strconv"
	"strings"
	"testing"

	"tinca"
)

// benchScale keeps each experiment to roughly a second; the absolute
// numbers are simulated anyway, so scale affects noise, not shape.
const benchScale = 0.25

// runExperiment executes one driver per benchmark iteration and reports
// the named cell of the result's last row as a custom metric.
func runExperiment(b *testing.B, name string, metricCol, metricName string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := tinca.RunExperiment(name, tinca.ExpOptions{Scale: benchScale, Seed: 42})
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if metricCol != "" && len(t.Rows) > 0 {
			v := t.Cell(len(t.Rows)-1, metricCol)
			v = strings.TrimSuffix(v, "x")
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				b.ReportMetric(f, metricName)
			}
		}
	}
}

// BenchmarkTable1 prints the NVM technology profiles (constants).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", "", "") }

// BenchmarkTable2 prints the benchmark parameter table (constants).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", "", "") }

// BenchmarkFig3a regenerates Figure 3(a): NVM write traffic of journalling
// vs no journalling; reports the journal/nojournal percentage for the last
// workload (varmail).
func BenchmarkFig3a(b *testing.B) {
	runExperiment(b, "3a", "journal/nojournal %", "journal_traffic_%")
}

// BenchmarkFig3b regenerates Figure 3(b): bandwidth under consistency
// mechanisms; reports the final (journal + clflush) bandwidth.
func BenchmarkFig3b(b *testing.B) {
	runExperiment(b, "3b", "bandwidth MB/s", "journal+flush_MB/s")
}

// BenchmarkFig4 regenerates Figure 4: synchronous cache-metadata cost;
// reports the no-journal no-metadata IOPS.
func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "4", "write IOPS", "nometa_IOPS")
}

// BenchmarkFig7 regenerates Figure 7 (Fio micro-benchmark); reports the
// Tinca/Classic write-IOPS ratio at R/W 7/3.
func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "7", "IOPS ratio", "tinca_iops_ratio")
}

// BenchmarkFig8 regenerates Figure 8 (TPC-C sweep); reports the
// Tinca/Classic TPM ratio at 60 users.
func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "8", "TPM ratio", "tinca_tpm_ratio")
}

// BenchmarkFig10 regenerates Figure 10 (TeraGen on HDFS); reports Tinca's
// execution-time saving at 3 replicas.
func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "10", "time saved %", "time_saved_%")
}

// BenchmarkFig11 regenerates Figure 11 (Filebench on GlusterFS); reports
// the Tinca/Classic OPs ratio for varmail.
func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "11", "OPs ratio", "tinca_ops_ratio")
}

// BenchmarkFig12a regenerates Figure 12(a) (disk media impact); reports
// the Tinca/Classic gap on HDD.
func BenchmarkFig12a(b *testing.B) {
	runExperiment(b, "12a", "Tinca/Classic", "hdd_gap")
}

// BenchmarkFig12b regenerates Figure 12(b) (NVM media impact); reports the
// gap on STT-RAM.
func BenchmarkFig12b(b *testing.B) {
	runExperiment(b, "12b", "Tinca/Classic", "sttram_gap")
}

// BenchmarkFig12c regenerates Figure 12(c) (cache write hit rate); reports
// Tinca's hit rate.
func BenchmarkFig12c(b *testing.B) {
	runExperiment(b, "12c", "write hit rate %", "tinca_hit_%")
}

// BenchmarkFig13 regenerates Figure 13 (blocks per transaction); reports
// the final-window fileserver/webproxy ratio.
func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "13", "fs/wp ratio", "fileserver_over_webproxy")
}

// BenchmarkRecoverability runs the Section 5.1 crash-recovery torture test
// (fails the benchmark on any consistency violation).
func BenchmarkRecoverability(b *testing.B) {
	runExperiment(b, "recover", "", "")
}

// BenchmarkAblations runs the DESIGN.md §6 design-choice benches; reports
// the 4MB-ring IOPS (last row).
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablate", "write IOPS", "ring4MB_IOPS")
}

// BenchmarkEndurance runs the NVM-wear extension; reports Tinca's
// relative lifetime multiplier.
func BenchmarkEndurance(b *testing.B) {
	runExperiment(b, "endurance", "relative lifetime", "tinca_lifetime_x")
}

// BenchmarkCLWB runs the clwb-instruction extension; reports the
// Tinca/Classic gap under clwb.
func BenchmarkCLWB(b *testing.B) {
	runExperiment(b, "clwb", "Tinca/Classic", "clwb_gap")
}

// BenchmarkRecoveryTime runs the recovery-latency extension.
func BenchmarkRecoveryTime(b *testing.B) {
	runExperiment(b, "recovertime", "", "")
}

// BenchmarkGroupCommitScaling runs the "fig: group-commit scaling" bench
// (commit throughput at 1/2/4/8 concurrent committers); reports the
// 8-goroutine speedup over a single committer.
func BenchmarkGroupCommitScaling(b *testing.B) {
	runExperiment(b, "groupcommit", "speedup", "speedup_8g_x")
}

// BenchmarkMissPathScaling runs the "fig: miss-path scaling" bench
// (read-miss throughput at 1/4/8 concurrent readers, serial vs
// concurrent miss path); reports the 8-goroutine concurrent-path
// speedup over the serial miss path.
func BenchmarkMissPathScaling(b *testing.B) {
	runExperiment(b, "misspath", "speedup", "miss_speedup_8g_x")
}

// BenchmarkReadHitScaling runs the "fig: read-hit scaling" bench
// (aggregate hit throughput at 1/4/8/16 concurrent readers on one hot
// shard, locked vs seqlock hit path); reports the 8-reader seqlock
// speedup over the shard-locked baseline.
func BenchmarkReadHitScaling(b *testing.B) {
	// The headline metric lives mid-table (the writer rows come last), so
	// read it from the table's metric map instead of the last row's cell.
	for i := 0; i < b.N; i++ {
		t, err := tinca.RunExperiment("readhit", tinca.ExpOptions{Scale: benchScale, Seed: 42})
		if err != nil {
			b.Fatalf("readhit: %v", err)
		}
		if s, ok := t.Metrics["readhit_speedup_8g_x"]; ok {
			b.ReportMetric(s, "readhit_speedup_8g_x")
		}
	}
}

// BenchmarkCommitLatency measures the latency (simulated work) of one
// 8-block Tinca commit at the API level — the core operation of the paper.
func BenchmarkCommitLatency(b *testing.B) {
	clock := tinca.NewClock()
	rec := tinca.NewRecorder()
	mem := tinca.NewNVM(16<<20, tinca.NVDIMM, clock, rec)
	disk := tinca.NewDisk(1<<20, tinca.NullDisk, clock, rec)
	c, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, tinca.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := c.Begin()
		for j := uint64(0); j < 8; j++ {
			txn.Write(uint64(i%1024)*8+j, block)
		}
		if err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rec.Get(tinca.CounterCLFlush))/float64(b.N), "clflush/commit")
}
