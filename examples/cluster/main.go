// Cluster: the paper's Section 5.3 setting as a runnable example — a
// four-data-node storage cluster (Figure 9) where every node runs a full
// local stack (file system over NVM cache over SSD). It runs TeraGen
// through the HDFS-like substrate at replication factors 1..3 and a
// varmail run on the GlusterFS-like replicated volume, comparing Tinca
// and Classic nodes, and finishes with a node failure + read failover +
// recovery demonstration.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"tinca"
)

func main() {
	fmt.Println("== TeraGen on 4 HDFS data nodes (2M rows ≈ 2.4MB × replicas) ==")
	fmt.Printf("%-9s %-9s %14s %14s\n", "replicas", "nodes", "exec time(sim)", "clflush/MB")
	for _, replicas := range []int{1, 2, 3} {
		for _, kind := range []struct {
			name string
			k    tinca.StackConfig
		}{
			{"Tinca", tinca.StackConfig{Kind: tinca.KindTinca}},
			{"Classic", tinca.StackConfig{Kind: tinca.KindClassic}},
		} {
			nodeCfg := kind.k
			nodeCfg.NVMBytes = 4 << 20
			nodeCfg.FSBlocks = 8192
			nodeCfg.GroupCommitBlocks = 32
			nodeCfg.JournalBlocks = 512
			c, err := tinca.NewCluster(tinca.ClusterConfig{
				Nodes: 4, Replicas: replicas, Node: nodeCfg,
			})
			if err != nil {
				log.Fatal(err)
			}
			h := tinca.NewHDFS(c, tinca.HDFSOptions{ChunkBytes: 1 << 20})
			before := c.Stats()
			cnt, err := tinca.RunTeraGen(h, tinca.TeraGenConfig{Rows: 24000, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			d := c.Stats().Sub(before)
			mb := float64(cnt.Bytes) / (1 << 20)
			fmt.Printf("%-9d %-9s %13.1fms %14.0f\n",
				replicas, kind.name, c.Wall.Now().Seconds()*1000,
				float64(d.CLFlushes)/mb)
		}
	}

	fmt.Println("\n== Varmail on a GlusterFS-style replica-2 volume (Tinca nodes) ==")
	c, err := tinca.NewCluster(tinca.ClusterConfig{
		Nodes: 4, Replicas: 2,
		Node: tinca.StackConfig{Kind: tinca.KindTinca, NVMBytes: 4 << 20, FSBlocks: 8192},
	})
	if err != nil {
		log.Fatal(err)
	}
	v := tinca.NewVolume(c)
	cnt, err := tinca.RunFilebench(v, tinca.FilebenchConfig{
		Profile: tinca.Varmail, Files: 48, FileBytes: 16 << 10, Ops: 600, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d file ops in %.1fms simulated → %.0f OPs/s\n",
		cnt.FileOps, c.Wall.Now().Seconds()*1000,
		float64(cnt.FileOps)/c.Wall.Now().Seconds())

	// Node failure: reads fail over to the surviving replica; restoring
	// the node runs its local Tinca recovery.
	fmt.Println("\n== Node failure and recovery ==")
	if err := v.Create("/ha-demo"); err != nil {
		log.Fatal(err)
	}
	if err := v.WriteAt("/ha-demo", 0, []byte("replicated and crash consistent")); err != nil {
		log.Fatal(err)
	}
	primary := -1
	for i, n := range c.Nodes {
		if n.Stack.FS.Exists("/ha-demo") {
			primary = i
			break
		}
	}
	if err := c.SetNodeDown(primary, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d (primary replica) failed\n", primary)
	buf := make([]byte, 31)
	if _, err := v.ReadAt("/ha-demo", 0, buf); err != nil {
		log.Fatal("failover read: ", err)
	}
	fmt.Printf("read from surviving replica: %q\n", buf)
	if err := c.SetNodeDown(primary, false); err != nil {
		log.Fatal(err)
	}
	for i, n := range c.Nodes {
		if err := n.Stack.FS.Check(); err != nil {
			log.Fatalf("node %d fsck after recovery: %v", i, err)
		}
	}
	fmt.Printf("node %d recovered (Tinca Section 4.5 recovery ran); all 4 nodes fsck clean\n", primary)
}
