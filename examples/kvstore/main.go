// KVStore: a tiny crash-consistent key-value store built *directly* on
// Tinca's transactional primitives — no file system, no journal of its
// own. It demonstrates the paper's thesis from a downstream-user angle:
// if the cache gives you multi-block atomic commits (Section 4.1), the
// storage engine above shrinks to a hash layout plus Begin/Write/Commit.
//
// Layout: the store hashes each key to a bucket block; a bucket holds
// fixed-size slots of (keylen, key, vallen, value). A Put rewrites the
// bucket block inside one Tinca transaction — multi-key Puts are atomic
// across buckets because a transaction may span blocks.
//
// Run with: go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"tinca"
	"tinca/internal/sim"
)

const (
	buckets   = 1024
	slotSize  = 256
	slotsPerB = tinca.BlockSize / slotSize
)

type kv struct {
	cache *tinca.Cache
}

func (s *kv) bucket(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h % buckets
}

// PutAll atomically writes a batch of key-value pairs: after a crash,
// either all of them are visible or none.
func (s *kv) PutAll(pairs map[string]string) error {
	txn := s.cache.Begin()
	touched := map[uint64][]byte{}
	for key, val := range pairs {
		b := s.bucket(key)
		blk, ok := touched[b]
		if !ok {
			blk = make([]byte, tinca.BlockSize)
			if err := s.cache.Read(b, blk); err != nil {
				return err
			}
			touched[b] = blk
		}
		if err := putInBucket(blk, key, val); err != nil {
			return err
		}
	}
	for b, blk := range touched {
		txn.Write(b, blk)
	}
	return txn.Commit()
}

// Get returns the value for key, or ok=false.
func (s *kv) Get(key string) (string, bool, error) {
	blk := make([]byte, tinca.BlockSize)
	if err := s.cache.Read(s.bucket(key), blk); err != nil {
		return "", false, err
	}
	for i := 0; i < slotsPerB; i++ {
		slot := blk[i*slotSize : (i+1)*slotSize]
		klen := int(binary.LittleEndian.Uint16(slot[0:2]))
		if klen == 0 || klen > slotSize/2 {
			continue
		}
		if string(slot[4:4+klen]) == key {
			vlen := int(binary.LittleEndian.Uint16(slot[2:4]))
			return string(slot[4+klen : 4+klen+vlen]), true, nil
		}
	}
	return "", false, nil
}

func putInBucket(blk []byte, key, val string) error {
	if 4+len(key)+len(val) > slotSize {
		return fmt.Errorf("kv: entry too large")
	}
	free := -1
	for i := 0; i < slotsPerB; i++ {
		slot := blk[i*slotSize : (i+1)*slotSize]
		klen := int(binary.LittleEndian.Uint16(slot[0:2]))
		if klen == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if klen <= slotSize/2 && string(slot[4:4+klen]) == key {
			free = i // overwrite in place
			break
		}
	}
	if free < 0 {
		return fmt.Errorf("kv: bucket full")
	}
	slot := blk[free*slotSize : (free+1)*slotSize]
	for i := range slot {
		slot[i] = 0
	}
	binary.LittleEndian.PutUint16(slot[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint16(slot[2:4], uint16(len(val)))
	copy(slot[4:], key)
	copy(slot[4+len(key):], val)
	return nil
}

func main() {
	clock := tinca.NewClock()
	rec := tinca.NewRecorder()
	mem := tinca.NewNVM(16<<20, tinca.PCM, clock, rec)
	disk := tinca.NewDisk(1<<16, tinca.SSD, clock, rec)
	cache, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		log.Fatal(err)
	}
	store := &kv{cache: cache}

	// An atomic multi-key update: an account transfer that must never be
	// half-applied.
	if err := store.PutAll(map[string]string{
		"account:alice": "90",
		"account:bob":   "110",
		"tx:0001":       "alice->bob:10",
	}); err != nil {
		log.Fatal(err)
	}
	v, _, _ := store.Get("account:alice")
	fmt.Printf("alice=%s after transfer (committed in one Tinca transaction)\n", v)

	// Power failure *during* the next transfer: arm a crash mid-commit
	// (the group-commit seal amortizes pointer persists, so the whole
	// commit takes fewer NVM operations than it used to — arm early
	// enough to land inside the persist sequence).
	mem.ArmCrash(12)
	crashed, _ := tinca.CatchCrash(func() {
		_ = store.PutAll(map[string]string{
			"account:alice": "0",
			"account:bob":   "200",
			"tx:0002":       "alice->bob:90",
		})
	})
	mem.Crash(sim.NewRand(1), 0.5)
	fmt.Printf("crash injected mid-commit: %v\n", crashed)

	// Reboot: recovery restores an all-or-nothing state.
	cache2, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := cache2.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	store2 := &kv{cache: cache2}
	alice, _, _ := store2.Get("account:alice")
	bob, _, _ := store2.Get("account:bob")
	_, tx2Applied, _ := store2.Get("tx:0002")
	fmt.Printf("after recovery: alice=%s bob=%s tx:0002 applied=%v\n", alice, bob, tx2Applied)
	if (alice == "90" && bob == "110" && !tx2Applied) || (alice == "0" && bob == "200" && tx2Applied) {
		fmt.Println("transfer was atomic: both balances and the tx record agree")
	} else {
		log.Fatalf("TORN transfer: alice=%s bob=%s tx=%v", alice, bob, tx2Applied)
	}
}
