// Fileserver: the paper's motivating macro-workload (a Filebench-style
// file server, R/W 1/2, 16KB requests) run head-to-head on the Tinca stack
// and on the Classic stack (Ext4-style journalling over a Flashcache-style
// NVM cache), printing the throughput and write-amplification comparison
// of Figures 3 and 11.
//
// Run with: go run ./examples/fileserver
package main

import (
	"fmt"
	"log"

	"tinca"
)

func main() {
	fmt.Println("fileserver workload: 2000 file operations, 128 files, PCM cache over SSD")
	fmt.Println()
	fmt.Printf("%-18s %12s %14s %14s %12s\n", "system", "OPs/s(sim)", "clflush/op", "disk blks/op", "NVM MB")

	var tincaOps, classicOps float64
	for _, kind := range []struct {
		name string
		k    tinca.StackConfig
	}{
		{"Tinca", tinca.StackConfig{Kind: tinca.KindTinca}},
		{"Classic", tinca.StackConfig{Kind: tinca.KindClassic}},
	} {
		cfg := kind.k
		cfg.NVMBytes = 16 << 20
		cfg.FSBlocks = 16384
		cfg.GroupCommitBlocks = 32
		cfg.JournalBlocks = 512
		sys, err := tinca.NewStack(cfg)
		if err != nil {
			log.Fatal(err)
		}
		start := sys.Stats().Device
		t0 := sys.Clock.Now()
		cnt, err := tinca.RunFilebench(sys.FS, tinca.FilebenchConfig{
			Profile: tinca.Fileserver, Files: 128, FileBytes: 32 << 10,
			IOBytes: 16 << 10, Ops: 2000, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := sys.Stats().Device.Sub(start)
		wall := (sys.Clock.Now() - t0).Seconds()
		ops := float64(cnt.FileOps) / wall
		fmt.Printf("%-18s %12.0f %14.1f %14.2f %12.1f\n",
			kind.name, ops,
			float64(d.CLFlushes)/float64(cnt.FileOps),
			float64(d.DiskBlocksWrite)/float64(cnt.FileOps),
			float64(d.NVMBytesWritten)/(1<<20))
		if kind.name == "Tinca" {
			reportZeroCopyScan(sys)
		}
		if kind.name == "Tinca" {
			tincaOps = ops
		} else {
			classicOps = ops
		}
		if err := sys.FS.Check(); err != nil {
			log.Fatal("fsck: ", err)
		}
	}
	fmt.Println()
	fmt.Printf("Tinca speedup: %.2fx (paper reports 1.8x for fileserver; shape, not absolute numbers)\n",
		tincaOps/classicOps)
	reportTiering()
}

// reportTiering runs the same workload on a tiered stack: a small NVM
// cache over a small L2 disk over a simulated S3-class object store
// (DESIGN.md §16). The uploader absorbs destaged blocks into 64KB
// objects off the foreground path; a crash then proves the tier's slot
// map brings every committed byte back, and the cost model prices the
// run in dollars.
func reportTiering() {
	fmt.Println()
	fmt.Println("L3 tiering: same workload, 2MB NVM over a 4MB L2 disk over an S3-class object store")
	sys, err := tinca.NewStack(tinca.StackConfig{
		Kind: tinca.KindTinca, NVMBytes: 2 << 20, FSBlocks: 16384,
		GroupCommitBlocks: 32, JournalBlocks: 512,
		L3: true, L3L2Blocks: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := sys.Clock.Now()
	cnt, err := tinca.RunFilebench(sys.FS, tinca.FilebenchConfig{
		Profile: tinca.Fileserver, Files: 128, FileBytes: 32 << 10,
		IOBytes: 16 << 10, Ops: 2000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := (sys.Clock.Now() - t0).Seconds()
	sys.Crash(nil, 0)
	if err := sys.Remount(); err != nil {
		log.Fatal("remount after crash: ", err)
	}
	if err := sys.FS.Check(); err != nil {
		log.Fatal("fsck after crash: ", err)
	}
	st := sys.Stats()
	ts, ob := st.Tier, st.Obj
	fmt.Printf("  %0.f ops/s(sim); tier: %d L2 hits, %d object fetches (%d prefetched), %d uploads of %d blocks\n",
		float64(cnt.FileOps)/wall, ts.L2Hits, ts.L3Fetches, ts.Prefetches, ts.Uploads, ts.UploadBlocks)
	fmt.Printf("  store: %d objects (%.1f MB), %.1f MB up, %.1f MB down, $%.6f; crash+remount: fsck clean\n",
		ob.Objects, float64(ob.BytesStored)/(1<<20),
		float64(ob.BytesUp)/(1<<20), float64(ob.BytesDown)/(1<<20), ob.CostDollars())
}

// reportZeroCopyScan re-reads the fileserver's working set through the
// zero-copy read API: each ReadAtView of committed data pins the NVM
// cache block and hands back a window onto it — no per-read block copy,
// no allocation.
func reportZeroCopyScan(sys *tinca.Stack) {
	names, err := sys.FS.ReadDir("/filebench")
	if err != nil {
		log.Fatal(err)
	}
	var bytes, views, zero int
	for _, n := range names {
		path := "/filebench/" + n
		info, err := sys.FS.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		for off := uint64(0); off < info.Size; {
			v, err := sys.FS.ReadAtView(path, off, 16<<10)
			if err != nil {
				log.Fatal(err)
			}
			bytes += v.Len()
			views++
			if v.ZeroCopy() {
				zero++
			}
			off += uint64(v.Len())
			if err := v.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := sys.Stats().Cache
	fmt.Printf("  zero-copy scan: %.1f MB in %d views (%d zero-copy), %d deferred frees, %d views open\n",
		float64(bytes)/(1<<20), views, zero, st.ViewDeferredFrees, st.OpenViews)
}
