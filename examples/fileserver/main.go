// Fileserver: the paper's motivating macro-workload (a Filebench-style
// file server, R/W 1/2, 16KB requests) run head-to-head on the Tinca stack
// and on the Classic stack (Ext4-style journalling over a Flashcache-style
// NVM cache), printing the throughput and write-amplification comparison
// of Figures 3 and 11.
//
// Run with: go run ./examples/fileserver
package main

import (
	"fmt"
	"log"

	"tinca"
)

func main() {
	fmt.Println("fileserver workload: 2000 file operations, 128 files, PCM cache over SSD")
	fmt.Println()
	fmt.Printf("%-18s %12s %14s %14s %12s\n", "system", "OPs/s(sim)", "clflush/op", "disk blks/op", "NVM MB")

	var tincaOps, classicOps float64
	for _, kind := range []struct {
		name string
		k    tinca.StackConfig
	}{
		{"Tinca", tinca.StackConfig{Kind: tinca.KindTinca}},
		{"Classic", tinca.StackConfig{Kind: tinca.KindClassic}},
	} {
		cfg := kind.k
		cfg.NVMBytes = 16 << 20
		cfg.FSBlocks = 16384
		cfg.GroupCommitBlocks = 32
		cfg.JournalBlocks = 512
		sys, err := tinca.NewStack(cfg)
		if err != nil {
			log.Fatal(err)
		}
		start := sys.Stats().Device
		t0 := sys.Clock.Now()
		cnt, err := tinca.RunFilebench(sys.FS, tinca.FilebenchConfig{
			Profile: tinca.Fileserver, Files: 128, FileBytes: 32 << 10,
			IOBytes: 16 << 10, Ops: 2000, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := sys.Stats().Device.Sub(start)
		wall := (sys.Clock.Now() - t0).Seconds()
		ops := float64(cnt.FileOps) / wall
		fmt.Printf("%-18s %12.0f %14.1f %14.2f %12.1f\n",
			kind.name, ops,
			float64(d.CLFlushes)/float64(cnt.FileOps),
			float64(d.DiskBlocksWrite)/float64(cnt.FileOps),
			float64(d.NVMBytesWritten)/(1<<20))
		if kind.name == "Tinca" {
			reportZeroCopyScan(sys)
		}
		if kind.name == "Tinca" {
			tincaOps = ops
		} else {
			classicOps = ops
		}
		if err := sys.FS.Check(); err != nil {
			log.Fatal("fsck: ", err)
		}
	}
	fmt.Println()
	fmt.Printf("Tinca speedup: %.2fx (paper reports 1.8x for fileserver; shape, not absolute numbers)\n",
		tincaOps/classicOps)
}

// reportZeroCopyScan re-reads the fileserver's working set through the
// zero-copy read API: each ReadAtView of committed data pins the NVM
// cache block and hands back a window onto it — no per-read block copy,
// no allocation.
func reportZeroCopyScan(sys *tinca.Stack) {
	names, err := sys.FS.ReadDir("/filebench")
	if err != nil {
		log.Fatal(err)
	}
	var bytes, views, zero int
	for _, n := range names {
		path := "/filebench/" + n
		info, err := sys.FS.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		for off := uint64(0); off < info.Size; {
			v, err := sys.FS.ReadAtView(path, off, 16<<10)
			if err != nil {
				log.Fatal(err)
			}
			bytes += v.Len()
			views++
			if v.ZeroCopy() {
				zero++
			}
			off += uint64(v.Len())
			if err := v.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := sys.Stats().Cache
	fmt.Printf("  zero-copy scan: %.1f MB in %d views (%d zero-copy), %d deferred frees, %d views open\n",
		float64(bytes)/(1<<20), views, zero, st.ViewDeferredFrees, st.OpenViews)
}
