// Crashdemo: a guided tour of Tinca's crash consistency (paper Sections
// 4.3-4.5). It commits a multi-block transaction, pulls the power at an
// operation boundary *inside* the commit protocol, materializes an
// adversarial crash image (a random subset of un-flushed cache lines
// persists anyway), recovers, and shows the transaction was atomic:
// either every block reads the new version, or every block reads the old
// one — never a mix.
//
// Run with: go run ./examples/crashdemo
package main

import (
	"fmt"
	"log"

	"tinca"
	"tinca/internal/sim"
)

func main() {
	rng := sim.NewRand(2026)

	for _, crashAfter := range []int64{3, 40, 200, 350} {
		clock := tinca.NewClock()
		rec := tinca.NewRecorder()
		mem := tinca.NewNVM(4<<20, tinca.PCM, clock, rec)
		disk := tinca.NewDisk(1<<16, tinca.SSD, clock, rec)
		cache, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
		if err != nil {
			log.Fatal(err)
		}

		// Baseline: blocks 0..4 hold version 'A', committed and durable.
		setup := cache.Begin()
		for blk := uint64(0); blk < 5; blk++ {
			setup.Write(blk, fill('A'))
		}
		if err := setup.Commit(); err != nil {
			log.Fatal(err)
		}

		// Attempt to move all five blocks to version 'B' in one
		// transaction, but lose power after crashAfter NVM operations.
		mem.ArmCrash(crashAfter)
		victim := cache.Begin()
		for blk := uint64(0); blk < 5; blk++ {
			victim.Write(blk, fill('B'))
		}
		crashed, _ := tinca.CatchCrash(func() {
			if err := victim.Commit(); err != nil {
				log.Fatal(err)
			}
		})
		if !crashed {
			mem.DisarmCrash()
		}
		mem.Crash(rng, 0.5) // power failure with random line evictions

		// Reboot: Open runs the recovery algorithm of Section 4.5.
		recovered, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
		if err != nil {
			log.Fatal("recovery: ", err)
		}
		if err := recovered.CheckInvariants(); err != nil {
			log.Fatal("invariants: ", err)
		}

		versions := ""
		buf := make([]byte, tinca.BlockSize)
		for blk := uint64(0); blk < 5; blk++ {
			if err := recovered.Read(blk, buf); err != nil {
				log.Fatal(err)
			}
			versions += string(buf[0])
		}
		atomic := versions == "AAAAA" || versions == "BBBBB"
		fmt.Printf("crash after %3d NVM ops (crashed=%-5v): blocks read %q  -> atomic: %v\n",
			crashAfter, crashed, versions, atomic)
		if !atomic {
			log.Fatal("TORN TRANSACTION — crash consistency violated")
		}
	}

	fmt.Println("\nEvery crash point left the transaction all-or-nothing; recovery was clean each time.")
	fmt.Println("(Run cmd/tincacrash for hundreds of randomized trials over the full stack.)")
}

func fill(b byte) []byte {
	p := make([]byte, tinca.BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}
