// Quickstart: the smallest complete use of the public API.
//
// It shows the two levels you can program against:
//
//  1. The assembled stack: a file system whose every operation is made
//     crash consistent by Tinca's transactional primitives.
//  2. The raw cache: Begin/Write/Commit transactions over 4KB blocks,
//     exactly the tinca_init_txn / tinca_commit / tinca_abort primitives
//     of the paper (Section 4.1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tinca"
)

func main() {
	// ---- level 1: the assembled stack ------------------------------------
	sys, err := tinca.NewStack(tinca.StackConfig{
		Kind:     tinca.KindTinca,
		NVMBytes: 16 << 20, // 16MB NVM cache (PCM timing by default)
		FSBlocks: 8192,     // 32MB file system on an SSD-backed disk
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.FS.MkdirAll("/projects/tinca"); err != nil {
		log.Fatal(err)
	}
	if err := sys.FS.WriteFile("/projects/tinca/README", []byte("committed without double writes")); err != nil {
		log.Fatal(err)
	}
	data, err := sys.FS.ReadFile("/projects/tinca/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", data)

	// Power-fail the machine and recover (Section 4.5). Committed data
	// survives; the file system and cache check out clean.
	sys.Crash(nil, 0)
	if err := sys.Remount(); err != nil {
		log.Fatal(err)
	}
	if err := sys.FS.Check(); err != nil {
		log.Fatal("fsck after crash: ", err)
	}
	data, _ = sys.FS.ReadFile("/projects/tinca/README")
	fmt.Printf("after power failure: %q\n", data)

	st := sys.Stats()
	fmt.Printf("clflush issued so far: %d, disk blocks written: %d, simulated time: %v\n\n",
		st.Device.CLFlushes, st.Device.DiskBlocksWrite, sys.Clock.Now())

	// ---- level 2: raw transactional cache --------------------------------
	clock := tinca.NewClock()
	rec := tinca.NewRecorder()
	mem := tinca.NewNVM(8<<20, tinca.PCM, clock, rec)
	disk := tinca.NewDisk(1<<16, tinca.SSD, clock, rec)
	cache, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// One atomic multi-block transaction: either all three blocks become
	// visible, or none (all-or-nothing across crashes).
	txn := cache.Begin()
	for blk := uint64(100); blk < 103; blk++ {
		payload := make([]byte, tinca.BlockSize)
		copy(payload, fmt.Sprintf("block %d, one write, no journal", blk))
		txn.Write(blk, payload)
	}
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, tinca.BlockSize)
	if err := cache.Read(101, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache read: %q\n", buf[:34])

	// The zero-copy alternative: ReadView pins the cached block and hands
	// back a window aliasing the NVM bytes — no copy, no allocation. The
	// pin keeps the bytes stable until Close even if the block is
	// overwritten or evicted meanwhile.
	v, err := cache.ReadView(101)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache view: %q (zero-copy: %v)\n", v.Bytes()[:34], v.ZeroCopy())
	if err := v.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("commit cost: %d clflush for 3 blocks (Classic journalling would roughly double it)\n",
		rec.Get(tinca.CounterCLFlush))
}
