// OLTP: a TPC-C database (the paper's MySQL/HammerDB experiment, Section
// 5.2.2) on Tinca vs Classic. Each TPC-C transaction ends in one fsync —
// one storage-stack transaction — and the example prints the throughput
// (TPM) and the per-transaction clflush / disk-block costs of Figure 8.
//
// Run with: go run ./examples/oltp
package main

import (
	"fmt"
	"log"

	"tinca"
)

func main() {
	const users = 20
	const txns = 1500
	fmt.Printf("TPC-C: 4 warehouses, %d users, %d transactions (45/43/4/4/4 mix)\n\n", users, txns)
	fmt.Printf("%-10s %12s %14s %14s\n", "system", "TPM(sim)", "clflush/txn", "disk blks/txn")

	kinds := []struct {
		name string
		kind tinca.StackConfig
	}{
		{"Tinca", tinca.StackConfig{Kind: tinca.KindTinca}},
		{"Classic", tinca.StackConfig{Kind: tinca.KindClassic}},
	}
	var tpms []float64
	for _, k := range kinds {
		cfg := k.kind
		cfg.NVMBytes = 8 << 20
		cfg.FSBlocks = 24576
		cfg.GroupCommitBlocks = 1 << 20 // commit on fsync: one stack txn per TPC-C txn
		cfg.JournalBlocks = 512
		sys, err := tinca.NewStack(cfg)
		if err != nil {
			log.Fatal(err)
		}

		engine, err := tinca.LoadTPCC(sys.FS, tinca.TPCCConfig{
			Warehouses: 4, CustomersPerDistrict: 300, Items: 1500, MaxOrders: 128,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Warm the cache into steady state, then measure.
		if _, err := engine.Run(sys.Clock, users, 400, 99); err != nil {
			log.Fatal(err)
		}
		start := sys.Stats().Device
		res, err := engine.Run(sys.Clock, users, txns, 7)
		if err != nil {
			log.Fatal(err)
		}
		d := sys.Stats().Device.Sub(start)
		fmt.Printf("%-10s %12.0f %14.1f %14.2f\n", k.name, res.TPM,
			float64(d.CLFlushes)/float64(res.Committed),
			float64(d.DiskBlocksWrite)/float64(res.Committed))
		tpms = append(tpms, res.TPM)

		if err := sys.FS.Check(); err != nil {
			log.Fatal("fsck: ", err)
		}
	}
	fmt.Printf("\nTinca speedup: %.2fx (paper reports 1.7-1.8x; shape, not absolute numbers)\n",
		tpms[0]/tpms[1])
}
