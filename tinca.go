// Package tinca is the public API of the Tinca reproduction: a
// transactional NVM disk cache with high performance and crash consistency
// (Wei et al., SC '17), together with every substrate the paper's
// evaluation depends on — a persistence-accurate NVM simulator, SSD/HDD
// models, a Flashcache-style baseline cache, a JBD2-style journal, a
// 4KB-block file system with pluggable consistency backends, TPC-C and
// Filebench/Fio/TeraGen workload generators, and HDFS/GlusterFS-like
// cluster substrates.
//
// # Quick start
//
//	sys, err := tinca.NewStack(tinca.StackConfig{Kind: tinca.KindTinca})
//	if err != nil { ... }
//	defer sys.Close()
//	err = sys.FS.WriteFile("/hello", []byte("crash-consistent"))
//
// Every write is committed through Tinca's transactional primitives
// (Section 4.4 of the paper): staged blocks are persisted once (no double
// writes), sealed by the ring-buffer Tail pointer, and recoverable after a
// power failure via sys.Crash / sys.Remount.
//
// # Concurrency and group commit
//
// The Cache and the Stack's FS are safe for concurrent use. Data-path
// reads run under lock-striped shards and an FS read lock, so they scale
// across goroutines; concurrently arriving Txn.Commit calls coalesce into
// a single ring-buffer seal — one Tail flip and a handful of fences
// amortized over the whole batch, with duplicate blocks absorbed into one
// NVM write. The GroupCommit knob in CacheOptions (and StackConfig) tunes
// batch formation:
//
//	sys, err := tinca.NewStack(tinca.StackConfig{
//		Kind:        tinca.KindTinca,
//		GroupCommit: tinca.GroupCommit{MaxBatch: 16, MaxWaitNS: 20_000},
//	})
//
// MaxBatch bounds how many transactions one seal may coalesce (default 8);
// MaxWaitNS optionally holds the seal leader back (real time) so a batch
// can fill, trading commit latency for throughput. The zero value seals
// opportunistically and is right for most workloads. Configurations are
// validated eagerly: OpenCache and NewStack return descriptive errors for
// nonsensical combinations instead of silently clamping.
//
// # Observability
//
// Each layer exposes a typed stats API — Cache.Stats, FS.Stats and
// Stack.Stats return exported structs (CacheStats, FSStats, StackStats):
//
//	st := sys.Stats()
//	fmt.Printf("commits=%d seals=%d avg batch=%.1f\n",
//		st.Cache.Commits, st.Cache.GroupSeals, st.Cache.AvgGroupSize())
//
// The string-keyed Recorder/Snapshot registry remains available (the
// experiment drivers still use it) but new code should prefer Stats.
//
// Deeper visibility is opt-in via StackConfig (DESIGN.md Section 9):
// Observe enables latency histograms in every layer (commit pipeline
// phases, destage, recovery, journal, per-op FS read/write), surfaced as
// LatencySummary values in the Stats structs; TraceEvents allocates a
// span ring exported as Chrome trace_event JSON (Stack.Tracer); and
// Stack.ServeMetrics starts a live HTTP endpoint with Prometheus text
// /metrics and net/http/pprof. All of it charges zero simulated time —
// enabling observability never changes the simulated results.
//
// CacheOptions.FlightRecorder additionally keeps a crash-surviving black
// box in the NVM image itself (DESIGN.md Section 13): a ring of
// checksummed 64-byte event records written with silent persists, decoded
// after a power failure via Cache.Blackbox, tincacrash -blackbox, or a
// live stack's /blackbox endpoint. Cache.RecoveryStats reports the last
// remount's Section 4.5 recovery pass broken down by phase.
//
// # Layers
//
// The exported names below are curated aliases over the implementation
// packages, so downstream users never import internal paths:
//
//   - Cache / CacheOptions / Txn — the paper's contribution itself
//     (Section 4): Begin/Write/Commit/Abort over an NVM device.
//   - NVM / NVMProfile — byte-addressable NVM with cache-line volatility,
//     clflush/sfence accounting and crash-image generation.
//   - Disk / DiskProfile — SSD and HDD service-time models.
//   - FS — the Ext4 stand-in, mountable over Tinca, a journal, or raw
//     in-place writes.
//   - Stack / StackConfig — fully assembled systems (Tinca vs Classic).
//   - Cluster / HDFS / Volume — the Section 5.3 distributed substrates.
//   - Experiments — regenerate every table and figure (see cmd/tincabench).
package tinca

import (
	"tinca/internal/blockdev"
	"tinca/internal/classic"
	"tinca/internal/cluster"
	"tinca/internal/core"
	"tinca/internal/errs"
	"tinca/internal/exp"
	"tinca/internal/flight"
	"tinca/internal/fs"
	"tinca/internal/jbd"
	"tinca/internal/metrics"
	"tinca/internal/oltp"
	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// BlockSize is the 4KB block unit shared by every layer.
const BlockSize = blockdev.BlockSize

// ---- the core contribution ------------------------------------------------

// Cache is the transactional NVM disk cache (paper Section 4). Create one
// with OpenCache over an NVM device and a disk, or let NewStack assemble
// the full system.
type Cache = core.Cache

// CacheOptions configure a Cache (ring size, ablation modes).
type CacheOptions = core.Options

// Txn is a running Tinca transaction (tinca_init_txn/tinca_commit/
// tinca_abort of the paper map to Cache.Begin/Txn.Commit/Txn.Abort).
type Txn = core.Txn

// View is a zero-copy window onto one cached disk block, returned by
// Cache.ReadView: on a concurrent-mode hit its Bytes alias the pinned
// NVM block (no 4KB copy, no allocation) and stay a stable snapshot
// until Close, even across concurrent commits and evictions. See also
// FS.ReadAtView / FileView for the file-level equivalent.
type View = core.View

// Cross-layer error sentinels. Each layer wraps these in its own
// descriptive error (core.ErrClosed, fs.ErrReadRange, ...), so
// errors.Is(err, tinca.ErrOutOfRange) matches the condition wherever in
// the stack it arose.
var (
	// ErrClosed: the cache (or a layer above it) was used after Close.
	ErrClosed = errs.ErrClosed
	// ErrOutOfRange: a block number, offset or buffer size outside the
	// valid range (including fs reads at or past EOF).
	ErrOutOfRange = errs.ErrOutOfRange
	// ErrViewExpired: a View/FileView used after its Close.
	ErrViewExpired = errs.ErrViewExpired
)

// OpenCache formats or recovers (paper Section 4.5) a Tinca cache.
func OpenCache(mem *NVM, disk *Disk, opts CacheOptions) (*Cache, error) {
	return core.Open(mem, disk, opts)
}

// GroupCommit tunes how concurrently arriving Txn.Commit calls coalesce
// into one ring-buffer seal. Set it via CacheOptions.GroupCommit or
// StackConfig.GroupCommit; the zero value (opportunistic batching, max
// batch 8) is right for most workloads. See the package comment.
type GroupCommit = core.GroupCommit

// CacheStats is the typed counter snapshot returned by Cache.Stats.
type CacheStats = core.CacheStats

// Ablation modes for the design-choice benches.
const (
	AblationNone        = core.AblationNone
	AblationDoubleWrite = core.AblationDoubleWrite
	AblationUBJ         = core.AblationUBJ
)

// ---- devices ----------------------------------------------------------------

// NVM is the simulated byte-addressable non-volatile memory device.
type NVM = pmem.Device

// NVMProfile selects the NVM technology latencies (Table 1).
type NVMProfile = pmem.Profile

// NVM technology profiles.
var (
	PCM    = pmem.PCM
	STTRAM = pmem.STTRAM
	NVDIMM = pmem.NVDIMM
)

// CLWBVariant derives a profile with the cheaper clwb write-back
// instruction in place of clflush (Section 2.1 of the paper).
var CLWBVariant = pmem.CLWBVariant

// Banks derives a profile whose persistence-relevant operations overlap
// up to depth concurrent issuers (DIMM write-bank parallelism) — the
// persist-side analogue of the channel parallelism concurrent reads get.
// Pair it with CacheOptions.CommitRings to let independent per-shard ring
// seals overlap their persists.
var Banks = pmem.Banks

// NewNVM creates an NVM device charging the given clock and recorder.
func NewNVM(size int, prof NVMProfile, clock *Clock, rec *Recorder) *NVM {
	return pmem.New(size, prof, clock, rec)
}

// CatchCrash runs fn, absorbing an injected-crash panic from an armed NVM
// device (see NVM.ArmCrash); use it to build crash-consistency harnesses.
var CatchCrash = pmem.CatchCrash

// Disk is a simulated block device.
type Disk = blockdev.Device

// DiskProfile selects the disk medium service times.
type DiskProfile = blockdev.Profile

// Disk media profiles.
var (
	SSD      = blockdev.SSD
	HDD      = blockdev.HDD
	NullDisk = blockdev.Null
)

// NewDisk creates a block device of nblocks 4KB blocks.
func NewDisk(nblocks uint64, prof DiskProfile, clock *Clock, rec *Recorder) *Disk {
	return blockdev.New(nblocks, prof, clock, rec)
}

// ---- instrumentation --------------------------------------------------------

// Clock is the simulated clock all devices charge service time to.
type Clock = sim.Clock

// NewClock returns a clock at time zero.
var NewClock = sim.NewClock

// Recorder counts clflush/sfence/disk-block/transaction events.
//
// Deprecated: new code should prefer the typed stats accessors —
// Cache.Stats, FS.Stats and Stack.Stats — which return exported structs
// instead of string-keyed counters. The Recorder remains fully supported
// for the experiment drivers and custom instrumentation.
type Recorder = metrics.Recorder

// NewRecorder returns an empty counter registry.
var NewRecorder = metrics.NewRecorder

// Snapshot is an immutable copy of counter values; Sub computes deltas.
//
// Deprecated: prefer the typed CacheStats/FSStats/StackStats structs
// returned by the Stats accessors; Snapshot remains for delta-based
// experiment drivers.
type Snapshot = metrics.Snapshot

// LatencySummary is a percentile digest (count/mean/p50/p95/p99/max, in
// simulated ns) of one latency histogram; CacheStats and FSStats carry
// them when the stack was built with Observe.
type LatencySummary = metrics.LatencySummary

// PhaseLatency names one commit-pipeline phase's latency digest
// (CacheStats.CommitPhases).
type PhaseLatency = core.PhaseLatency

// Tracer is the fixed-size ring of structured span events recording the
// commit pipeline's phases; export it with WriteChromeTrace for
// chrome://tracing / Perfetto. Obtain one from StackConfig.TraceEvents
// (Stack.Tracer) or NewTracer.
type Tracer = metrics.Tracer

// NewTracer allocates a span ring of n events (rounded up to a power of
// two; n <= 0 picks the 65536-event default).
var NewTracer = metrics.NewTracer

// TraceInstant is a point-in-time marker merged into the Chrome trace
// export via Tracer.WriteChromeTraceWith — used for the NVM flight
// recorder's event timeline (CacheOptions.FlightRecorder).
type TraceInstant = metrics.Instant

// FlightRecord is one decoded 64-byte event from the crash-surviving NVM
// flight ring; FlightBlackbox is the forensic digest Cache.Blackbox
// returns (last sealed generation, txns in flight, event timeline). See
// DESIGN.md §13.
type (
	FlightRecord   = flight.Record
	FlightBlackbox = flight.Blackbox
)

// RecoveryStats is the per-phase breakdown of the last §4.5 recovery pass
// (Cache.RecoveryStats). Populated by every remount, Observe or not.
type RecoveryStats = core.RecoveryStats

// Frequently needed counter names; the full list lives in the metrics
// package documentation.
const (
	CounterCLFlush         = metrics.NVMCLFlush
	CounterSFence          = metrics.NVMSFence
	CounterDiskBlocksWrite = metrics.DiskBlocksWrite
	CounterDiskBlocksRead  = metrics.DiskBlocksRead
	CounterTxnCommit       = metrics.TxnCommit
	CounterTxnBlocks       = metrics.TxnBlocks
)

// ---- baseline stack pieces ---------------------------------------------------

// ClassicCache is the Flashcache-style baseline cache (block-format
// metadata, synchronous updates).
type ClassicCache = classic.Cache

// ClassicOptions configure the baseline cache.
type ClassicOptions = classic.Options

// Journal is the JBD2-style redo journal used by the Classic stack.
type Journal = jbd.Journal

// JournalOptions configure the journal area.
type JournalOptions = jbd.Options

// ---- file system --------------------------------------------------------------

// FS is the 4KB-block file system (the Ext4 stand-in). Obtain one from a
// Stack, or mount your own over any Backend.
type FS = fs.FS

// FSOptions configure mounting (group commit, page cache, op cost).
type FSOptions = fs.Options

// FileInfo describes a file or directory.
type FileInfo = fs.FileInfo

// FSStats is the typed operation snapshot returned by FS.Stats.
type FSStats = fs.FSStats

// FileView is a zero-copy window onto a contiguous byte range of one
// file, returned by FS.ReadAtView (and File.ReadAtView). On a
// Tinca-backed stack committed bytes alias the pinned NVM block; other
// backends (and holes or staged bytes) degrade to private copies.
type FileView = fs.FileView

// Common file-system errors.
var (
	ErrNotExist = fs.ErrNotExist
	ErrExist    = fs.ErrExist
	ErrNoSpace  = fs.ErrNoSpace
	// ErrReadRange: a read at or past EOF; wraps ErrOutOfRange.
	ErrReadRange = fs.ErrReadRange
)

// ---- assembled stacks -----------------------------------------------------------

// Stack is a fully assembled storage system: file system over cache over
// NVM over disk, with shared clock and metrics.
type Stack = stack.Stack

// StackConfig sizes and parameterizes a Stack.
type StackConfig = stack.Config

// Stack kinds.
const (
	KindTinca            = stack.Tinca
	KindClassic          = stack.Classic
	KindClassicNoJournal = stack.ClassicNoJournal
)

// StackStats aggregates per-layer stats; returned by Stack.Stats.
type StackStats = stack.Stats

// DeviceStats are the typed simulated-hardware counters (NVM persistence
// traffic, disk block I/O) in StackStats.Device; Cluster.Stats returns
// their sum across nodes. Subtract snapshots with Sub to meter an
// interval.
type DeviceStats = stack.DeviceStats

// NewStack builds a stack with a freshly formatted file system.
var NewStack = stack.New

// ---- workloads --------------------------------------------------------------------

// Workload generator types (Table 2 of the paper).
type (
	// FioConfig parameterizes the random-I/O micro-benchmark.
	FioConfig = workload.FioConfig
	// FilebenchConfig parameterizes the fileserver/webproxy/varmail
	// personalities.
	FilebenchConfig = workload.FilebenchConfig
	// TeraGenConfig parameterizes the TeraGen row generator.
	TeraGenConfig = workload.TeraGenConfig
	// WorkloadCounts aggregates what a generator executed.
	WorkloadCounts = workload.Counts
	// FileAPI is the interface workloads drive (FS and cluster volumes).
	FileAPI = workload.FileAPI
)

// Filebench personalities.
const (
	Fileserver = workload.Fileserver
	Webproxy   = workload.Webproxy
	Varmail    = workload.Varmail
)

// Workload entry points.
var (
	RunFio       = workload.RunFio
	RunFilebench = workload.RunFilebench
	RunTeraGen   = workload.RunTeraGen
)

// TPCCEngine is the OLTP engine running the TPC-C mix over a FileAPI.
type TPCCEngine = oltp.Engine

// TPCCConfig sizes the TPC-C database.
type TPCCConfig = oltp.Config

// LoadTPCC populates the TPC-C tables.
var LoadTPCC = oltp.Load

// ---- cluster substrates --------------------------------------------------------------

// Cluster is a set of data nodes with a network model (Section 5.3).
type Cluster = cluster.Cluster

// ClusterConfig sizes a cluster.
type ClusterConfig = cluster.Config

// HDFS is the NameNode/DataNode distributed file system.
type HDFS = cluster.HDFS

// HDFSOptions tune chunking.
type HDFSOptions = cluster.HDFSOptions

// Volume is the GlusterFS-like replicated volume.
type Volume = cluster.Volume

// Cluster entry points.
var (
	NewCluster = cluster.New
	NewHDFS    = cluster.NewHDFS
	NewVolume  = cluster.NewVolume
)

// ---- experiments ----------------------------------------------------------------------

// Experiment types: regenerate the paper's tables and figures.
type (
	// ExpOptions tune experiment scale and seed.
	ExpOptions = exp.Options
	// ExpTable is a printable result table.
	ExpTable = exp.Table
)

// Experiment entry points.
var (
	// RunExperiment executes one registered experiment by name ("7", "8",
	// "10", "recover", ...); see ExperimentNames.
	RunExperiment = exp.Run
	// ExperimentNames lists the registered experiments in paper order.
	ExperimentNames = exp.Names
)
