module tinca

go 1.22
