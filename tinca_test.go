package tinca_test

import (
	"bytes"
	"fmt"
	"testing"

	"tinca"
)

func TestPublicStackLifecycle(t *testing.T) {
	sys, err := tinca.NewStack(tinca.StackConfig{
		Kind:        tinca.KindTinca,
		NVMBytes:    8 << 20,
		FSBlocks:    8192,
		NVMProfile:  tinca.NVDIMM,
		DiskProfile: tinca.NullDisk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FS.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("api"), 5000)
	if err := sys.FS.WriteFile("/a/b/f", payload); err != nil {
		t.Fatal(err)
	}
	sys.Crash(nil, 0)
	if err := sys.Remount(); err != nil {
		t.Fatal(err)
	}
	got, err := sys.FS.ReadFile("/a/b/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("data lost across crash: %v", err)
	}
	if err := sys.FS.Check(); err != nil {
		t.Fatal(err)
	}
	if sys.Rec.Get(tinca.CounterCLFlush) == 0 {
		t.Fatal("no metrics recorded")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRawCacheTxn(t *testing.T) {
	clock := tinca.NewClock()
	rec := tinca.NewRecorder()
	mem := tinca.NewNVM(4<<20, tinca.PCM, clock, rec)
	disk := tinca.NewDisk(1<<16, tinca.SSD, clock, rec)
	c, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	txn := c.Begin()
	block := make([]byte, tinca.BlockSize)
	block[0] = 42
	txn.Write(7, block)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, tinca.BlockSize)
	if err := c.Read(7, out); err != nil || out[0] != 42 {
		t.Fatalf("read back: %v %d", err, out[0])
	}
	// Crash + reopen through the public surface.
	mem.Crash(nil, 0)
	c2, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Read(7, out); err != nil || out[0] != 42 {
		t.Fatal("committed block lost")
	}
}

func TestPublicWorkloadsOverAPI(t *testing.T) {
	sys, err := tinca.NewStack(tinca.StackConfig{
		Kind: tinca.KindTinca, NVMBytes: 8 << 20, FSBlocks: 8192,
		NVMProfile: tinca.NVDIMM, DiskProfile: tinca.NullDisk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tinca.RunFio(sys.FS, tinca.FioConfig{FileBytes: 1 << 20, Ops: 200, ReadPct: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tinca.RunFilebench(sys.FS, tinca.FilebenchConfig{
		Profile: tinca.Varmail, Files: 8, FileBytes: 8 << 10, Ops: 50, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tinca.RunTeraGen(sys.FS, tinca.TeraGenConfig{Rows: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.FS.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicClusterAPI(t *testing.T) {
	c, err := tinca.NewCluster(tinca.ClusterConfig{
		Nodes: 4, Replicas: 2,
		Node: tinca.StackConfig{
			Kind: tinca.KindTinca, NVMBytes: 4 << 20, FSBlocks: 4096,
			NVMProfile: tinca.NVDIMM, DiskProfile: tinca.NullDisk,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := tinca.NewVolume(c)
	if err := v.Create("/x"); err != nil {
		t.Fatal(err)
	}
	if err := v.Append("/x", []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	h := tinca.NewHDFS(c, tinca.HDFSOptions{ChunkBytes: 64 << 10})
	if err := h.Create("/big"); err != nil {
		t.Fatal(err)
	}
	if err := h.Append("/big", make([]byte, 100<<10)); err != nil {
		t.Fatal(err)
	}
	if c.Wall.Now() == 0 {
		t.Fatal("cluster wall clock did not advance")
	}
}

func TestPublicTPCC(t *testing.T) {
	sys, err := tinca.NewStack(tinca.StackConfig{
		Kind: tinca.KindTinca, NVMBytes: 8 << 20, FSBlocks: 16384,
		NVMProfile: tinca.NVDIMM, DiskProfile: tinca.NullDisk,
		GroupCommitBlocks: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := tinca.LoadTPCC(sys.FS, tinca.TPCCConfig{
		Warehouses: 1, CustomersPerDistrict: 30, Items: 100, MaxOrders: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(sys.Clock, 5, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 50 || res.TPM <= 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestExperimentRegistryViaAPI(t *testing.T) {
	names := tinca.ExperimentNames()
	if len(names) < 15 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	tb, err := tinca.RunExperiment("table1", tinca.ExpOptions{})
	if err != nil || len(tb.Rows) == 0 {
		t.Fatalf("table1: %v", err)
	}
}

// ExampleNewStack demonstrates the one-call path to a crash-consistent
// file system on a Tinca cache.
func ExampleNewStack() {
	sys, err := tinca.NewStack(tinca.StackConfig{Kind: tinca.KindTinca})
	if err != nil {
		panic(err)
	}
	_ = sys.FS.WriteFile("/greeting", []byte("hello, NVM"))
	data, _ := sys.FS.ReadFile("/greeting")
	fmt.Println(string(data))
	// Output: hello, NVM
}

// ExampleOpenCache demonstrates the raw transactional primitives
// (tinca_init_txn / tinca_commit of the paper).
func ExampleOpenCache() {
	clock, rec := tinca.NewClock(), tinca.NewRecorder()
	mem := tinca.NewNVM(4<<20, tinca.PCM, clock, rec)
	disk := tinca.NewDisk(1<<16, tinca.SSD, clock, rec)
	cache, err := tinca.OpenCache(mem, disk, tinca.CacheOptions{})
	if err != nil {
		panic(err)
	}

	txn := cache.Begin() // tinca_init_txn
	block := make([]byte, tinca.BlockSize)
	copy(block, "atomic, written once")
	txn.Write(1001, block)
	if err := txn.Commit(); err != nil { // tinca_commit
		panic(err)
	}

	out := make([]byte, tinca.BlockSize)
	_ = cache.Read(1001, out)
	fmt.Println(string(out[:20]))
	// Output: atomic, written once
}
